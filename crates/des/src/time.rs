//! Simulated time: whole seconds since the start of the scenario.
//!
//! Batch-system traces (SWF and the Grid'5000 OAR logs used by the paper)
//! have one-second resolution, so the whole simulator works in `u64`
//! seconds. Heterogeneity (a cluster being "20% faster") is applied by
//! dividing durations by the speed factor and rounding *up*; see
//! [`Duration::scale_by_speed`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in whole seconds since scenario start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in whole seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

/// Seconds in one minute.
pub const MINUTE: u64 = 60;
/// Seconds in one hour.
pub const HOUR: u64 = 3_600;
/// Seconds in one day.
pub const DAY: u64 = 86_400;

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never" / +infinity.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Raw number of seconds since scenario start.
    #[inline]
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Elapsed time since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// `true` when this instant stands for "never" (`SimTime::MAX`).
    #[inline]
    pub fn is_never(self) -> bool {
        self == SimTime::MAX
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from whole seconds.
    #[inline]
    pub fn secs(s: u64) -> Duration {
        Duration(s)
    }

    /// Construct from whole minutes.
    #[inline]
    pub fn minutes(m: u64) -> Duration {
        Duration(m * MINUTE)
    }

    /// Construct from whole hours.
    #[inline]
    pub fn hours(h: u64) -> Duration {
        Duration(h * HOUR)
    }

    /// Construct from whole days.
    #[inline]
    pub fn days(d: u64) -> Duration {
        Duration(d * DAY)
    }

    /// Raw number of seconds.
    #[inline]
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Scale a reference-speed duration onto a cluster with relative speed
    /// `speed` (>= 1.0 means faster than the reference cluster), rounding
    /// up so that a faster cluster never *under*-reserves.
    ///
    /// This implements the paper's "automatic adjustment of the walltime to
    /// the speed of the cluster" (§1): a 3600 s job on a 1.2× cluster takes
    /// `ceil(3600 / 1.2) = 3000` s.
    ///
    /// # Panics
    /// Panics if `speed` is not finite and strictly positive.
    #[inline]
    pub fn scale_by_speed(self, speed: f64) -> Duration {
        assert!(
            speed.is_finite() && speed > 0.0,
            "cluster speed must be finite and positive, got {speed}"
        );
        if speed == 1.0 || self.0 == 0 {
            return self;
        }
        let scaled = (self.0 as f64 / speed).ceil();
        debug_assert!(scaled >= 0.0);
        Duration(scaled as u64)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_never() {
            return write!(f, "never");
        }
        write!(f, "t={}", format_hms(self.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_hms(self.0))
    }
}

/// Render a number of seconds as `[Dd]HH:MM:SS`.
pub fn format_hms(total: u64) -> String {
    let days = total / DAY;
    let rem = total % DAY;
    let h = rem / HOUR;
    let m = (rem % HOUR) / MINUTE;
    let s = rem % MINUTE;
    if days > 0 {
        format!("{days}d{h:02}:{m:02}:{s:02}")
    } else {
        format!("{h:02}:{m:02}:{s:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_add_duration() {
        assert_eq!(SimTime(10) + Duration(5), SimTime(15));
    }

    #[test]
    fn simtime_add_saturates_at_max() {
        assert_eq!(SimTime::MAX + Duration(1), SimTime::MAX);
    }

    #[test]
    fn simtime_sub_saturates_at_zero() {
        assert_eq!(SimTime(3) - Duration(10), SimTime::ZERO);
    }

    #[test]
    fn since_measures_elapsed() {
        assert_eq!(SimTime(100).since(SimTime(40)), Duration(60));
    }

    #[test]
    fn since_saturates_when_earlier_is_later() {
        assert_eq!(SimTime(40).since(SimTime(100)), Duration::ZERO);
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::minutes(2), Duration(120));
        assert_eq!(Duration::hours(1), Duration(3600));
        assert_eq!(Duration::days(1), Duration(86_400));
        assert_eq!(Duration::secs(7), Duration(7));
    }

    #[test]
    fn scale_identity_at_unit_speed() {
        assert_eq!(Duration(3600).scale_by_speed(1.0), Duration(3600));
    }

    #[test]
    fn scale_rounds_up() {
        // 3600 / 1.2 = 3000 exactly.
        assert_eq!(Duration(3600).scale_by_speed(1.2), Duration(3000));
        // 100 / 1.4 = 71.43 -> 72.
        assert_eq!(Duration(100).scale_by_speed(1.4), Duration(72));
        // 1 / 1.4 -> 1 (never rounds a nonzero duration to zero here).
        assert_eq!(Duration(1).scale_by_speed(1.4), Duration(1));
    }

    #[test]
    fn scale_zero_stays_zero() {
        assert_eq!(Duration(0).scale_by_speed(1.4), Duration(0));
    }

    #[test]
    #[should_panic(expected = "cluster speed")]
    fn scale_rejects_zero_speed() {
        let _ = Duration(10).scale_by_speed(0.0);
    }

    #[test]
    #[should_panic(expected = "cluster speed")]
    fn scale_rejects_nan_speed() {
        let _ = Duration(10).scale_by_speed(f64::NAN);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime(3_661).to_string(), "t=01:01:01");
        assert_eq!(Duration(90_061).to_string(), "1d01:01:01");
        assert_eq!(SimTime::MAX.to_string(), "never");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime(5) < SimTime(6));
        assert!(Duration(5) < Duration(6));
        assert!(SimTime::MAX.is_never());
        assert!(!SimTime(5).is_never());
    }
}
