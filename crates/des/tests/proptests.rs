//! Property-based tests for the DES kernel.

use grid_des::{Duration, EventQueue, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// The event queue delivers exactly a stable sort by (time, insertion).
    #[test]
    fn queue_is_stable_time_sort(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().zip(0..times.len()).collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|s| (s.at.as_secs(), s.event))).collect();
        prop_assert_eq!(got, expected);
    }

    /// pop_batch partitions the stream into maximal equal-time groups.
    #[test]
    fn pop_batch_partitions(times in prop::collection::vec(0u64..50, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut total = 0usize;
        let mut prev: Option<SimTime> = None;
        while let Some((t, batch)) = q.pop_batch() {
            prop_assert!(!batch.is_empty());
            prop_assert!(batch.iter().all(|s| s.at == t));
            if let Some(p) = prev {
                prop_assert!(t > p, "batches must strictly advance time");
            }
            prev = Some(t);
            total += batch.len();
        }
        prop_assert_eq!(total, times.len());
    }

    /// The bucketed (calendar) backend is observationally identical to the
    /// BinaryHeap oracle under an arbitrary interleaving of schedule, pop,
    /// pop_batch and peek ops: same sequence numbers out of `schedule`,
    /// same `(time, seq, event)` stream out of every pop, same lengths.
    /// Schedules land at `watermark + dt` so the mix stays legal for both.
    #[test]
    fn bucketed_queue_agrees_with_heap_oracle(
        ops in prop::collection::vec((0u8..10, 0u64..500), 1..300),
    ) {
        let mut ladder = EventQueue::bucketed();
        let mut heap = EventQueue::heap();
        let mut watermark = SimTime::ZERO;
        let mut next_event = 0usize;
        for (kind, dt) in ops {
            match kind {
                // Schedule-heavy: keep the ladder populated enough to
                // trigger era rebuilds and overflow spills.
                0..=5 => {
                    let at = watermark + Duration(dt);
                    let s_l = ladder.schedule(at, next_event);
                    let s_h = heap.schedule(at, next_event);
                    prop_assert_eq!(s_l, s_h, "seq numbers diverged");
                    next_event += 1;
                }
                6 | 7 => {
                    let p_l = ladder.pop().map(|s| (s.at, s.seq, s.event));
                    let p_h = heap.pop().map(|s| (s.at, s.seq, s.event));
                    prop_assert_eq!(&p_l, &p_h, "pop diverged");
                    if let Some((at, _, _)) = p_l {
                        watermark = at;
                    }
                }
                8 => {
                    let b_l = ladder.pop_batch().map(|(t, v)| {
                        (t, v.into_iter().map(|s| (s.at, s.seq, s.event)).collect::<Vec<_>>())
                    });
                    let b_h = heap.pop_batch().map(|(t, v)| {
                        (t, v.into_iter().map(|s| (s.at, s.seq, s.event)).collect::<Vec<_>>())
                    });
                    prop_assert_eq!(&b_l, &b_h, "pop_batch diverged");
                    if let Some((t, _)) = b_l {
                        watermark = t;
                    }
                }
                _ => {
                    prop_assert_eq!(ladder.peek_time(), heap.peek_time());
                }
            }
            prop_assert_eq!(ladder.len(), heap.len());
        }
        // Drain both to the end: the tails must agree element-for-element.
        loop {
            let p_l = ladder.pop().map(|s| (s.at, s.seq, s.event));
            let p_h = heap.pop().map(|s| (s.at, s.seq, s.event));
            prop_assert_eq!(&p_l, &p_h, "drain diverged");
            if p_l.is_none() {
                break;
            }
        }
    }

    /// SimTime arithmetic is consistent with u64 arithmetic (saturating).
    #[test]
    fn time_arithmetic(a in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 2) {
        prop_assert_eq!((SimTime(a) + Duration(d)).as_secs(), a + d);
        prop_assert_eq!((SimTime(a) + Duration(d)).since(SimTime(a)), Duration(d));
        prop_assert_eq!(SimTime(a) - Duration(a + d + 1), SimTime::ZERO);
    }

    /// Scaling by speed >= 1 never lengthens a duration, and scaling by 1.0
    /// is the identity.
    #[test]
    fn scaling_shrinks(d in 0u64..10_000_000, speed in 1.0f64..4.0) {
        let scaled = Duration(d).scale_by_speed(speed);
        prop_assert!(scaled <= Duration(d));
        // ceil semantics: scaled is the smallest integer >= d / speed.
        let exact = d as f64 / speed;
        prop_assert!(scaled.as_secs() as f64 >= exact - 1e-6);
        prop_assert!((scaled.as_secs() as f64) < exact + 1.0 + 1e-6);
        prop_assert_eq!(Duration(d).scale_by_speed(1.0), Duration(d));
    }

    /// Derived RNG streams are reproducible and (statistically) distinct.
    #[test]
    fn rng_streams(seed in any::<u64>(), s1 in 0u64..64, s2 in 0u64..64) {
        let mut a = SimRng::derive(seed, s1);
        let mut b = SimRng::derive(seed, s1);
        prop_assert_eq!(a.next_u64(), b.next_u64());
        if s1 != s2 {
            let mut c = SimRng::derive(seed, s1);
            let mut d = SimRng::derive(seed, s2);
            // Not a hard guarantee per-draw, but 4 consecutive collisions
            // would indicate broken stream separation.
            let same = (0..4).filter(|_| c.next_u64() == d.next_u64()).count();
            prop_assert!(same < 4);
        }
    }

    /// log_uniform respects its bounds for arbitrary ranges.
    #[test]
    fn log_uniform_bounds(seed in any::<u64>(), lo in 1.0f64..100.0, width in 0.0f64..10_000.0) {
        let hi = lo + width;
        let mut r = SimRng::seed_from_u64(seed);
        for _ in 0..32 {
            let v = r.log_uniform(lo, hi);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{} not in [{lo}, {hi}]", v);
        }
    }

    /// weighted_index only returns indices with positive weight.
    #[test]
    fn weighted_index_support(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..20),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut r = SimRng::seed_from_u64(seed);
        for _ in 0..64 {
            let i = r.weighted_index(&weights);
            prop_assert!(weights[i] > 0.0, "picked zero-weight index {i}");
        }
    }
}
