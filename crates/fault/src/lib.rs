//! # grid-fault — deterministic fault injection for robustness campaigns
//!
//! The paper evaluates task reallocation on a *healthy* dedicated grid;
//! the mechanism's whole point, though, is coping with a grid whose state
//! diverges from the plan. This crate supplies the three spec-level fault
//! models campaigns inject to measure that robustness, all seed-addressed
//! and byte-deterministic:
//!
//! * **Cluster outages** ([`OutageSpec`]) — sites go down and come back
//!   at stochastically drawn instants (exponential time-to-failure /
//!   time-to-repair). The grid driver kills the running jobs of a downed
//!   site, re-enters every evicted job into the grid mapper, and blocks
//!   the site's availability [`Profile`](grid_batch::Profile) until
//!   recovery.
//! * **ECT estimation noise** ([`EctNoiseSpec`]) — multiplicative
//!   lognormal error applied to the completion-time *estimates* the
//!   mapper and the reallocation heuristics see
//!   ([`grid_batch::EctNoise`] hooks the two middleware estimation
//!   queries), while true runtimes keep driving the discrete-event
//!   simulation.
//! * **Trace perturbation** ([`PerturbSpec`]) — per-job arrival jitter
//!   and runtime scaling over the SWF-derived workload, keyed by a
//!   perturbation seed.
//!
//! ## Fault expressions
//!
//! Faults are declared on the campaign-spec `faults` axis with the same
//! `name(key=value, …)` policy-expression machinery every other axis
//! uses ([`grid_ser::expr`]), and components compose with `+`:
//!
//! ```text
//! none                                      # the healthy grid (default)
//! outage(mtbf_h=12, mttr_h=2)               # site failures
//! ect-noise(sigma=0.5)                      # estimation error
//! perturb(jitter_s=600, runtime_factor=1.2) # trace perturbation
//! outage(mtbf_h=12)+ect-noise(sigma=0.5)    # combined
//! ```
//!
//! A [`Fault`] is a `Copy` handle whose identity is the canonical
//! expression: default-valued arguments drop away and components print
//! in a fixed order, so spelling variants collide instead of silently
//! doubling a campaign axis. The canonical `none` handle is
//! [`Fault::NONE`]; campaign descriptors omit the fault key entirely for
//! it, which keeps every pre-fault cache key and report byte-identical.

pub mod noise;
pub mod outage;
pub mod perturb;

pub use noise::EctNoiseSpec;
pub use outage::{OutageSpec, OutageWindow, OutageWindows};
pub use perturb::PerturbSpec;

use std::sync::Mutex;

use grid_ser::expr::{BoundArgs, PolicyExpr};

/// The resolved configuration of one fault expression: any combination
/// of the three fault models (all `None` = the healthy grid).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultConfig {
    /// Cluster outage windows.
    pub outage: Option<OutageSpec>,
    /// Lognormal ECT estimation noise.
    pub ect_noise: Option<EctNoiseSpec>,
    /// Workload-trace perturbation.
    pub perturb: Option<PerturbSpec>,
}

/// Copyable, comparable handle to a resolved fault configuration.
///
/// Identity (equality, hashing, ordering, display, cache keys) is the
/// canonical fault expression, exactly like the policy handles of the
/// other campaign axes.
#[derive(Clone, Copy)]
pub struct Fault {
    cfg: &'static FaultConfig,
    /// Canonical expression — the handle's identity.
    key: &'static str,
}

/// Interned non-trivial fault handles, one per canonical expression.
static CONFIGURED: Mutex<Vec<Fault>> = Mutex::new(Vec::new());

/// The component kinds, in canonical (display) order.
const KINDS: [&str; 3] = ["outage", "ect-noise", "perturb"];

impl Fault {
    /// The healthy grid: no faults injected. Campaign descriptors omit
    /// the fault key for this handle, so pre-fault cache keys survive.
    pub const NONE: Fault = Fault {
        cfg: &FaultConfig {
            outage: None,
            ect_noise: None,
            perturb: None,
        },
        key: "none",
    };

    /// Canonical fault expression — the handle's identity.
    pub fn name(self) -> &'static str {
        self.key
    }

    /// `true` for the healthy-grid handle.
    pub fn is_none(self) -> bool {
        self.key == "none"
    }

    /// The resolved configuration.
    pub fn config(self) -> &'static FaultConfig {
        self.cfg
    }

    /// Resolve a fault expression (`none`, `outage(mtbf_h=12)`,
    /// `outage(mtbf_h=12)+ect-noise(sigma=0.5)`) to a handle.
    ///
    /// Components are validated against their declared parameters —
    /// unknown or ill-typed keys error with the accepted list — and
    /// canonicalised: default-valued arguments drop away and components
    /// are ordered `outage`, `ect-noise`, `perturb`, so every spelling
    /// of one configuration is one handle.
    pub fn resolve_expr(input: &str) -> Result<Fault, String> {
        let parts = split_components(input);
        if parts.iter().any(|p| p.trim().is_empty()) {
            return Err(format!("`{input}`: empty fault component between `+`"));
        }
        let mut cfg = FaultConfig::default();
        // Canonical part per kind, indexed like `KINDS`.
        let mut canon: [Option<String>; 3] = [None, None, None];
        for part in &parts {
            let expr = PolicyExpr::parse(part)?;
            let kind = expr.name.to_ascii_lowercase();
            if kind == "none" {
                BoundArgs::bind(&expr, &[], "none")?;
                if parts.len() > 1 {
                    return Err(format!(
                        "`{input}`: `none` cannot be combined with other fault components"
                    ));
                }
                return Ok(Fault::NONE);
            }
            let slot = KINDS.iter().position(|k| *k == kind).ok_or_else(|| {
                format!(
                    "unknown fault component `{}` (registered: none, {})",
                    expr.name,
                    KINDS.join(", ")
                )
            })?;
            if canon[slot].is_some() {
                return Err(format!("`{input}`: fault component `{kind}` given twice"));
            }
            let bound = match slot {
                0 => {
                    let bound = BoundArgs::bind(&expr, &OutageSpec::params(), "outage")?;
                    cfg.outage = Some(OutageSpec::from_args(&bound)?);
                    bound
                }
                1 => {
                    let bound = BoundArgs::bind(&expr, &EctNoiseSpec::params(), "ect-noise")?;
                    cfg.ect_noise = Some(EctNoiseSpec::from_args(&bound)?);
                    bound
                }
                _ => {
                    let bound = BoundArgs::bind(&expr, &PerturbSpec::params(), "perturb")?;
                    cfg.perturb = Some(PerturbSpec::from_args(&bound)?);
                    bound
                }
            };
            canon[slot] = Some(bound.canonical(KINDS[slot]));
        }
        let key = canon
            .iter()
            .flatten()
            .cloned()
            .collect::<Vec<_>>()
            .join("+");
        debug_assert!(!key.is_empty(), "non-none expression must have a component");
        let mut interned = CONFIGURED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(hit) = interned.iter().find(|f| f.key == key) {
            return Ok(*hit);
        }
        let handle = Fault {
            cfg: Box::leak(Box::new(cfg)),
            key: String::leak(key),
        };
        interned.push(handle);
        Ok(handle)
    }
}

/// Split a compound fault expression on `+` outside parentheses, so
/// component arguments stay intact (`outage(mtbf_h=12)+perturb(...)`).
fn split_components(input: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in input.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            '+' if depth == 0 => {
                parts.push(&input[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&input[start..]);
    parts
}

/// Mix a fault-model seed into the run seed (SplitMix64-style), so a
/// spec-level `seed=` argument opens an independent stream family
/// without perturbing the workload seed's own streams.
pub(crate) fn mix_seed(run_seed: u64, fault_seed: u64) -> u64 {
    let mut z = run_seed ^ fault_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl std::fmt::Debug for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl PartialEq for Fault {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}

impl Eq for Fault {}

impl std::hash::Hash for Fault {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name().hash(state);
    }
}

impl PartialOrd for Fault {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fault {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.name().cmp(other.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_resolves_to_the_const_handle() {
        for spelled in ["none", "NONE", " none ", "none()"] {
            let f = Fault::resolve_expr(spelled).unwrap();
            assert_eq!(f, Fault::NONE, "{spelled}");
            assert!(f.is_none());
            assert_eq!(f.name(), "none");
        }
        assert_eq!(Fault::NONE.config(), &FaultConfig::default());
    }

    #[test]
    fn default_valued_args_canonicalise_away() {
        let bare = Fault::resolve_expr("outage").unwrap();
        for spelled in [
            "outage()",
            "outage(mtbf_h=24)",
            "outage(mtbf_h=24.0, mttr_h=1)",
        ] {
            assert_eq!(Fault::resolve_expr(spelled).unwrap(), bare, "{spelled}");
        }
        assert_eq!(bare.name(), "outage");
        let cfg = bare.config().outage.expect("outage set");
        assert_eq!(cfg.mtbf_h, 24.0);
        assert_eq!(cfg.mttr_h, 1.0);
        // A non-default argument survives in the canonical key.
        let hot = Fault::resolve_expr("outage(mttr_h=1, mtbf_h=12)").unwrap();
        assert_eq!(hot.name(), "outage(mtbf_h=12)");
        assert_ne!(hot, bare);
    }

    #[test]
    fn compound_expressions_canonicalise_component_order() {
        let a = Fault::resolve_expr("ect-noise(sigma=0.5)+outage(mtbf_h=12)").unwrap();
        let b = Fault::resolve_expr("outage(mtbf_h=12)+ect-noise(sigma=0.5)").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.name(), "outage(mtbf_h=12)+ect-noise(sigma=0.5)");
        assert!(std::ptr::eq(a.name(), b.name()), "interned, not re-leaked");
        let cfg = a.config();
        assert!(cfg.outage.is_some() && cfg.ect_noise.is_some());
        assert!(cfg.perturb.is_none());
    }

    #[test]
    fn errors_name_the_component_and_list_params() {
        let err = Fault::resolve_expr("meteor(strength=9)").unwrap_err();
        assert!(err.contains("unknown fault component `meteor`"), "{err}");
        assert!(err.contains("outage, ect-noise, perturb"), "{err}");
        let err = Fault::resolve_expr("outage(mtbf=1)").unwrap_err();
        assert!(err.contains("unknown parameter `mtbf`"), "{err}");
        assert!(err.contains("mtbf_h: float = 24"), "{err}");
        let err = Fault::resolve_expr("ect-noise(sigma=loud)").unwrap_err();
        assert!(err.contains("expects float"), "{err}");
        let err = Fault::resolve_expr("outage(mtbf_h=0)").unwrap_err();
        assert!(err.contains("mtbf_h > 0"), "{err}");
        let err = Fault::resolve_expr("outage+outage(mtbf_h=12)").unwrap_err();
        assert!(err.contains("given twice"), "{err}");
        let err = Fault::resolve_expr("none+outage").unwrap_err();
        assert!(err.contains("cannot be combined"), "{err}");
        let err = Fault::resolve_expr("none(x=1)").unwrap_err();
        assert!(err.contains("takes no parameters"), "{err}");
        assert!(Fault::resolve_expr("outage++perturb").is_err());
        let err = Fault::resolve_expr("perturb(runtime_factor=0)").unwrap_err();
        assert!(err.contains("runtime_factor > 0"), "{err}");
        let err = Fault::resolve_expr("ect-noise(sigma=-0.1)").unwrap_err();
        assert!(err.contains("sigma >= 0"), "{err}");
        // A clamped negative seed would keep a distinct cache key while
        // simulating identically to the default: rejected instead.
        for spelled in ["outage(seed=-1)", "ect-noise(seed=-1)", "perturb(seed=-1)"] {
            let err = Fault::resolve_expr(spelled).unwrap_err();
            assert!(err.contains("seed >= 0"), "{spelled}: {err}");
        }
    }

    #[test]
    fn handles_order_hash_and_display_by_key() {
        use std::collections::HashSet;
        let a = Fault::resolve_expr("ect-noise(sigma=0.5)").unwrap();
        let b = Fault::resolve_expr("ect-noise(sigma=0.5)").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "ect-noise(sigma=0.5)");
        assert_eq!(format!("{a:?}"), "ect-noise(sigma=0.5)");
        let set: HashSet<Fault> = [a, b, Fault::NONE].into();
        assert_eq!(set.len(), 2);
        assert!(a < Fault::NONE, "ordering is lexicographic on the key");
    }

    #[test]
    fn mix_seed_separates_fault_streams() {
        assert_ne!(mix_seed(42, 0), mix_seed(42, 1));
        assert_ne!(mix_seed(42, 0), mix_seed(43, 0));
        assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
    }
}
