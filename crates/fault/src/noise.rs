//! ECT estimation noise.
//!
//! Multiplicative lognormal error on the completion-time estimates the
//! meta-scheduler and the reallocation heuristics consume. The error
//! factor is a pure function of `(run seed, fault seed, site, job)` —
//! repeated queries see the same error regardless of query order or
//! cache invalidation, which keeps runs byte-deterministic — and the
//! *true* schedule (reservations, starts, completions) is never
//! perturbed: only the two middleware estimation queries
//! ([`Cluster::estimate_new`](grid_batch::Cluster::estimate_new) and
//! [`Cluster::current_ect`](grid_batch::Cluster::current_ect)) are
//! hooked, via [`grid_batch::EctNoise`].

use grid_batch::EctNoise;
use grid_ser::expr::{BoundArgs, ParamSpec};

/// Stream tag for noise streams (`b"ECTN"`).
const STREAM_TAG: u64 = 0x4543_544E;

/// Parameters of the ECT-noise fault model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EctNoiseSpec {
    /// Standard deviation of the lognormal error (`factor = exp(σ·z)`,
    /// `z ~ N(0,1)`; the median error factor is 1).
    pub sigma: f64,
    /// Fault-model seed, mixed into the run seed.
    pub seed: u64,
}

impl EctNoiseSpec {
    /// Declared expression parameters (`ect-noise(sigma=0.5)`).
    pub fn params() -> Vec<ParamSpec> {
        vec![
            ParamSpec::float(
                "sigma",
                Some(0.25),
                "lognormal σ of the multiplicative estimate error",
            ),
            ParamSpec::int("seed", Some(0), "fault-model seed mixed into the run seed"),
        ]
    }

    /// Build from validated expression arguments.
    pub fn from_args(args: &BoundArgs) -> Result<EctNoiseSpec, String> {
        let sigma = args.f64("sigma").expect("declared with a default");
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(format!("`ect-noise` needs sigma >= 0, got {sigma}"));
        }
        Ok(EctNoiseSpec {
            sigma,
            seed: crate::outage::fault_seed(args, "ect-noise")?,
        })
    }

    /// The per-cluster noise hook installed into site `site`'s cluster.
    pub fn model(&self, run_seed: u64, site: usize) -> EctNoise {
        EctNoise::new(
            crate::mix_seed(run_seed, self.seed) ^ STREAM_TAG.wrapping_mul(site as u64 + 1),
            self.sigma,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_batch::JobId;
    use grid_des::SimTime;

    fn spec(sigma: f64) -> EctNoiseSpec {
        EctNoiseSpec { sigma, seed: 0 }
    }

    #[test]
    fn factors_are_deterministic_per_job_and_site() {
        let m = spec(0.5).model(42, 1);
        assert_eq!(m.factor(JobId(7)), m.factor(JobId(7)));
        assert_ne!(m.factor(JobId(7)), m.factor(JobId(8)));
        let other_site = spec(0.5).model(42, 2);
        assert_ne!(m.factor(JobId(7)), other_site.factor(JobId(7)));
        let other_seed = EctNoiseSpec {
            seed: 3,
            ..spec(0.5)
        }
        .model(42, 1);
        assert_ne!(m.factor(JobId(7)), other_seed.factor(JobId(7)));
    }

    #[test]
    fn sigma_zero_is_the_identity() {
        let m = spec(0.0).model(42, 0);
        assert_eq!(m.factor(JobId(1)), 1.0);
        assert_eq!(
            m.perturb(JobId(1), SimTime(100), SimTime(250)),
            SimTime(250)
        );
    }

    #[test]
    fn factors_are_median_one_and_spread_grows_with_sigma() {
        let sample = |sigma: f64| -> Vec<f64> {
            let m = spec(sigma).model(1, 0);
            (0..2_000).map(|i| m.factor(JobId(i))).collect()
        };
        let narrow = sample(0.1);
        let wide = sample(0.8);
        let above = narrow.iter().filter(|f| **f > 1.0).count();
        assert!(
            (800..1200).contains(&above),
            "median must sit near 1: {above}/2000 above"
        );
        let spread = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        assert!(spread(&wide) > 4.0 * spread(&narrow));
        assert!(narrow.iter().all(|f| *f > 0.0), "factors stay positive");
    }

    #[test]
    fn perturb_scales_the_wait_not_the_clock() {
        let m = spec(0.5).model(9, 0);
        let now = SimTime(1_000);
        let noisy = m.perturb(JobId(3), now, SimTime(1_500));
        assert!(noisy >= now, "estimates never precede the query instant");
        // now + 0 stays now regardless of the factor.
        assert_eq!(m.perturb(JobId(3), now, now), now);
    }
}
