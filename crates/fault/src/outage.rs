//! Cluster outage windows.
//!
//! Each site fails independently: alternating exponential
//! time-to-failure (mean `mtbf_h` hours) and time-to-repair (mean
//! `mttr_h` hours) draws produce an infinite, strictly ordered sequence
//! of `[down, up)` windows. The sequence is a pure function of
//! `(run seed, fault seed, site)`, so the grid driver can consume it
//! lazily during a run while tests regenerate the exact same windows to
//! check invariants ("no job runs on a downed site") after the fact.

use grid_des::{SimRng, SimTime};
use grid_ser::expr::{BoundArgs, ParamSpec};

/// Stream tag for outage RNG streams (`b"FAIL"`).
const STREAM_TAG: u64 = 0x4641_494C;

/// Shared `seed` argument validation for every fault component: a
/// negative seed must be rejected, not clamped — `u64`-clamping would
/// let `outage(seed=-1)` keep a distinct canonical key (and cache key)
/// while simulating identically to `outage`, silently double-counting
/// one configuration in a campaign axis.
pub(crate) fn fault_seed(args: &BoundArgs, entry: &str) -> Result<u64, String> {
    let seed = args.i64("seed").expect("declared with a default");
    if seed < 0 {
        return Err(format!("`{entry}` needs seed >= 0, got {seed}"));
    }
    Ok(seed as u64)
}

/// Parameters of the outage fault model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageSpec {
    /// Mean time between failures per site, hours.
    pub mtbf_h: f64,
    /// Mean time to repair, hours.
    pub mttr_h: f64,
    /// Fault-model seed, mixed into the run seed.
    pub seed: u64,
}

impl OutageSpec {
    /// Declared expression parameters (`outage(mtbf_h=12, mttr_h=2)`).
    pub fn params() -> Vec<ParamSpec> {
        vec![
            ParamSpec::float("mtbf_h", Some(24.0), "mean hours between site failures"),
            ParamSpec::float("mttr_h", Some(1.0), "mean hours to repair a failed site"),
            ParamSpec::int("seed", Some(0), "fault-model seed mixed into the run seed"),
        ]
    }

    /// Build from validated expression arguments.
    pub fn from_args(args: &BoundArgs) -> Result<OutageSpec, String> {
        let mtbf_h = args.f64("mtbf_h").expect("declared with a default");
        let mttr_h = args.f64("mttr_h").expect("declared with a default");
        if !mtbf_h.is_finite() || mtbf_h <= 0.0 {
            return Err(format!("`outage` needs mtbf_h > 0, got {mtbf_h}"));
        }
        if !mttr_h.is_finite() || mttr_h <= 0.0 {
            return Err(format!("`outage` needs mttr_h > 0, got {mttr_h}"));
        }
        Ok(OutageSpec {
            mtbf_h,
            mttr_h,
            seed: fault_seed(args, "outage")?,
        })
    }

    /// The site's infinite outage-window sequence for a given run seed.
    pub fn windows(&self, run_seed: u64, site: usize) -> OutageWindows {
        OutageWindows {
            rng: SimRng::derive(
                crate::mix_seed(run_seed, self.seed),
                STREAM_TAG ^ (site as u64).wrapping_mul(0x0100_0000_01b3),
            ),
            mtbf_s: self.mtbf_h * 3_600.0,
            mttr_s: self.mttr_h * 3_600.0,
            t: 0,
        }
    }
}

/// One outage: the site is down over `[down, up)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// Instant the site fails.
    pub down: SimTime,
    /// Instant the site is back (exclusive end of the window).
    pub up: SimTime,
}

impl OutageWindow {
    /// `true` when `[start, end)` intersects the down window.
    pub fn overlaps(&self, start: SimTime, end: SimTime) -> bool {
        start < self.up && end > self.down
    }
}

/// Infinite iterator over one site's outage windows, strictly ordered
/// and non-overlapping (`prev.up < next.down`).
#[derive(Debug, Clone)]
pub struct OutageWindows {
    rng: SimRng,
    mtbf_s: f64,
    mttr_s: f64,
    /// End of the previous window (recovery instant), seconds.
    t: u64,
}

/// Exponential draw with the given mean, rounded to whole seconds and
/// floored at one second (windows and gaps must have positive length).
fn exp_secs(rng: &mut SimRng, mean_s: f64) -> u64 {
    let u = rng.gen_f64();
    (-(mean_s) * (1.0 - u).ln()).round().max(1.0) as u64
}

impl Iterator for OutageWindows {
    type Item = OutageWindow;

    fn next(&mut self) -> Option<OutageWindow> {
        let ttf = exp_secs(&mut self.rng, self.mtbf_s);
        let ttr = exp_secs(&mut self.rng, self.mttr_s);
        let down = self.t + ttf;
        let up = down + ttr;
        self.t = up;
        Some(OutageWindow {
            down: SimTime(down),
            up: SimTime(up),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> OutageSpec {
        OutageSpec {
            mtbf_h: 24.0,
            mttr_h: 1.0,
            seed: 0,
        }
    }

    #[test]
    fn windows_are_ordered_positive_and_deterministic() {
        let take = |seed: u64, site: usize| -> Vec<OutageWindow> {
            spec().windows(seed, site).take(50).collect()
        };
        let w = take(42, 0);
        let mut prev_up = SimTime::ZERO;
        for win in &w {
            assert!(win.down > prev_up, "windows must not touch: {win:?}");
            assert!(win.up > win.down, "window must have positive length");
            prev_up = win.up;
        }
        assert_eq!(w, take(42, 0), "same (seed, site) ⇒ same windows");
        assert_ne!(w, take(42, 1), "sites fail independently");
        assert_ne!(w, take(43, 0), "run seed feeds the stream");
    }

    #[test]
    fn means_are_roughly_respected() {
        let w: Vec<OutageWindow> = spec().windows(7, 2).take(2_000).collect();
        let mean_gap = w
            .windows(2)
            .map(|p| p[1].down.since(p[0].up).as_secs())
            .sum::<u64>() as f64
            / (w.len() - 1) as f64;
        let mean_len = w
            .iter()
            .map(|win| win.up.since(win.down).as_secs())
            .sum::<u64>() as f64
            / w.len() as f64;
        assert!(
            (mean_gap / (24.0 * 3_600.0) - 1.0).abs() < 0.15,
            "mtbf off: {mean_gap}"
        );
        assert!(
            (mean_len / 3_600.0 - 1.0).abs() < 0.15,
            "mttr off: {mean_len}"
        );
    }

    #[test]
    fn fault_seed_opens_a_new_family() {
        let a: Vec<_> = spec().windows(42, 0).take(5).collect();
        let b: Vec<_> = OutageSpec { seed: 9, ..spec() }
            .windows(42, 0)
            .take(5)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn overlap_predicate() {
        let w = OutageWindow {
            down: SimTime(100),
            up: SimTime(200),
        };
        assert!(w.overlaps(SimTime(150), SimTime(160)));
        assert!(w.overlaps(SimTime(50), SimTime(101)));
        assert!(w.overlaps(SimTime(199), SimTime(300)));
        assert!(!w.overlaps(SimTime(0), SimTime(100)), "end is exclusive");
        assert!(!w.overlaps(SimTime(200), SimTime(300)), "up is exclusive");
    }
}
