//! Workload-trace perturbation.
//!
//! Principled noise over the SWF-derived workload instead of ad-hoc
//! tweaks (after Guazzone's grid-workload mining): per-job arrival
//! jitter (uniform in `±jitter_s`, clamped at the epoch) and true-runtime
//! scaling (`runtime_factor`), keyed by a perturbation seed. Walltimes —
//! the *user estimates* — are deliberately left alone: scaling runtimes
//! past them reproduces the "bad" killed jobs the paper keeps in its
//! unclean traces (§3.3), and scaling them down widens the
//! over-estimation gap reallocation exploits.

use grid_batch::JobSpec;
use grid_des::{Duration, SimRng, SimTime};
use grid_ser::expr::{BoundArgs, ParamSpec};

/// Stream tag for perturbation streams (`b"PERT"`).
const STREAM_TAG: u64 = 0x5045_5254;

/// Parameters of the trace-perturbation fault model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbSpec {
    /// Arrival jitter half-width, seconds (each submit moves uniformly
    /// within `±jitter_s`, clamped at 0).
    pub jitter_s: u64,
    /// Multiplier applied to every true runtime (walltimes unchanged).
    pub runtime_factor: f64,
    /// Fault-model seed, mixed into the run seed.
    pub seed: u64,
}

impl PerturbSpec {
    /// Declared expression parameters
    /// (`perturb(jitter_s=600, runtime_factor=1.2)`).
    pub fn params() -> Vec<ParamSpec> {
        vec![
            ParamSpec::int("jitter_s", Some(0), "arrival jitter half-width in seconds"),
            ParamSpec::float(
                "runtime_factor",
                Some(1.0),
                "multiplier on true runtimes (walltimes unchanged)",
            ),
            ParamSpec::int("seed", Some(0), "fault-model seed mixed into the run seed"),
        ]
    }

    /// Build from validated expression arguments.
    pub fn from_args(args: &BoundArgs) -> Result<PerturbSpec, String> {
        let factor = args.f64("runtime_factor").expect("declared with a default");
        if !factor.is_finite() || factor <= 0.0 {
            return Err(format!("`perturb` needs runtime_factor > 0, got {factor}"));
        }
        let jitter = args.i64("jitter_s").expect("declared with a default");
        if jitter < 0 {
            return Err(format!("`perturb` needs jitter_s >= 0, got {jitter}"));
        }
        Ok(PerturbSpec {
            jitter_s: jitter as u64,
            runtime_factor: factor,
            seed: crate::outage::fault_seed(args, "perturb")?,
        })
    }

    /// Perturb `jobs` in place and restore `(submit, id)` order.
    ///
    /// Each job draws from its own derived stream, so the perturbation of
    /// one job never depends on how many other jobs exist — sub-sampled
    /// fractions of a trace perturb consistently with the full trace.
    pub fn apply(&self, jobs: &mut [JobSpec], run_seed: u64) {
        let base = crate::mix_seed(run_seed, self.seed);
        for job in jobs.iter_mut() {
            if self.jitter_s > 0 {
                let mut rng = SimRng::derive(base, STREAM_TAG ^ job.id.0);
                let delta = rng.gen_range(0..=2 * self.jitter_s) as i64 - self.jitter_s as i64;
                let submit = job.submit.as_secs() as i64 + delta;
                job.submit = SimTime(submit.max(0) as u64);
            }
            if self.runtime_factor != 1.0 {
                let scaled = (job.runtime_ref.as_secs() as f64 * self.runtime_factor).round();
                job.runtime_ref = Duration(scaled.max(0.0) as u64);
            }
        }
        jobs.sort_by_key(|j| (j.submit, j.id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs() -> Vec<JobSpec> {
        (0..200u64)
            .map(|i| JobSpec::new(i, i * 50, 2, 600, 1_200))
            .collect()
    }

    fn spec(jitter_s: u64, runtime_factor: f64) -> PerturbSpec {
        PerturbSpec {
            jitter_s,
            runtime_factor,
            seed: 0,
        }
    }

    #[test]
    fn jitter_moves_arrivals_within_bounds_and_keeps_order() {
        let original = jobs();
        let mut perturbed = original.clone();
        spec(300, 1.0).apply(&mut perturbed, 42);
        assert_eq!(perturbed.len(), original.len());
        let mut moved = 0;
        for job in &perturbed {
            let orig = &original[job.id.0 as usize];
            let delta = job.submit.as_secs() as i64 - orig.submit.as_secs() as i64;
            assert!(delta.abs() <= 300, "jitter bound violated: {delta}");
            assert_eq!(job.runtime_ref, orig.runtime_ref);
            assert_eq!(job.walltime_ref, orig.walltime_ref);
            if delta != 0 {
                moved += 1;
            }
        }
        assert!(moved > 100, "jitter must actually move arrivals: {moved}");
        for pair in perturbed.windows(2) {
            assert!((pair[0].submit, pair[0].id) <= (pair[1].submit, pair[1].id));
        }
    }

    #[test]
    fn perturbation_is_deterministic_and_seed_addressed() {
        let run = |fault_seed: u64, run_seed: u64| -> Vec<JobSpec> {
            let mut j = jobs();
            PerturbSpec {
                seed: fault_seed,
                ..spec(600, 1.0)
            }
            .apply(&mut j, run_seed);
            j
        };
        assert_eq!(run(0, 42), run(0, 42));
        assert_ne!(run(0, 42), run(1, 42), "fault seed opens a new family");
        assert_ne!(run(0, 42), run(0, 43), "run seed feeds the stream");
    }

    #[test]
    fn runtime_scaling_leaves_walltimes_alone() {
        let mut j = jobs();
        spec(0, 1.5).apply(&mut j, 42);
        for job in &j {
            assert_eq!(job.runtime_ref.as_secs(), 900);
            assert_eq!(job.walltime_ref.as_secs(), 1_200);
        }
        // Scaling past the walltime creates killed jobs, not errors.
        let mut k = jobs();
        spec(0, 3.0).apply(&mut k, 42);
        assert!(k.iter().all(|job| job.is_killed()));
    }

    #[test]
    fn early_arrivals_clamp_at_the_epoch() {
        let mut j = vec![JobSpec::new(0, 5, 1, 60, 120)];
        // Find a seed that would push the arrival negative; with a 1000 s
        // half-width nearly every draw does.
        spec(1_000, 1.0).apply(&mut j, 1);
        assert!(j[0].submit >= SimTime(0));
        assert!(j[0].submit <= SimTime(1_005));
    }

    #[test]
    fn per_job_streams_ignore_trace_size() {
        let mut full = jobs();
        let mut half: Vec<JobSpec> = jobs().into_iter().take(100).collect();
        let s = spec(600, 1.0);
        s.apply(&mut full, 42);
        s.apply(&mut half, 42);
        for job in &half {
            let twin = full.iter().find(|j| j.id == job.id).unwrap();
            assert_eq!(job.submit, twin.submit, "job {:?}", job.id);
        }
    }
}
