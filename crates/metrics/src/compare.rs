//! Run outcomes and the reference-run comparison of §3.4.

use std::collections::BTreeMap;

use grid_batch::JobId;
use grid_des::{Duration, SimTime};

/// Final fate of one job in one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// The job.
    pub id: JobId,
    /// Submission instant (arrival at the meta-scheduler).
    pub submit: SimTime,
    /// Instant execution began.
    pub start: SimTime,
    /// Instant execution ended (actual completion, kill included).
    pub completion: SimTime,
    /// Cluster index the job finally executed on.
    pub cluster: usize,
    /// How many times this job was migrated between clusters.
    pub reallocations: u32,
}

impl JobRecord {
    /// Response time: "the time spent in the system from the submission to
    /// the completion" (§3.4, citing Feitelson & Rudolph).
    pub fn response(&self) -> Duration {
        self.completion.since(self.submit)
    }

    /// Waiting time: submission to start.
    pub fn wait(&self) -> Duration {
        self.start.since(self.submit)
    }
}

/// Everything a single simulation run produced.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Per-job records, keyed (and therefore ordered) by job id.
    pub records: BTreeMap<JobId, JobRecord>,
    /// Total migrations performed ("a job can be counted several times if
    /// it was migrated several times").
    pub total_reallocations: u64,
    /// Number of reallocation events (hourly ticks) that migrated at least
    /// one job.
    pub active_ticks: u64,
    /// Number of reallocation events triggered in total.
    pub total_ticks: u64,
    /// ECT contract violations observed at migration time (§6 "contract
    /// checking"); always zero on a dedicated platform without injected
    /// estimation noise.
    pub contract_violations: u64,
    /// Jobs evicted by injected site outages (each eviction counts once,
    /// running or waiting); always zero on a healthy grid.
    pub outage_evictions: u64,
    /// Virtual instant the last job completed.
    pub makespan: SimTime,
}

impl RunOutcome {
    /// Insert one job record, updating the makespan.
    pub fn push(&mut self, rec: JobRecord) {
        self.makespan = self.makespan.max(rec.completion);
        self.records.insert(rec.id, rec);
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no job completed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean response time over all jobs, in seconds.
    pub fn mean_response(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let sum: u128 = self
            .records
            .values()
            .map(|r| u128::from(r.response().as_secs()))
            .sum();
        sum as f64 / self.records.len() as f64
    }

    /// Mean waiting time over all jobs, in seconds.
    pub fn mean_wait(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let sum: u128 = self
            .records
            .values()
            .map(|r| u128::from(r.wait().as_secs()))
            .sum();
        sum as f64 / self.records.len() as f64
    }

    /// Largest per-job reallocation count (starvation indicator, §4.3).
    pub fn max_job_reallocations(&self) -> u32 {
        self.records
            .values()
            .map(|r| r.reallocations)
            .max()
            .unwrap_or(0)
    }
}

/// The §3.4 metrics of a run measured against its no-reallocation
/// reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Jobs present in both runs.
    pub n_jobs: usize,
    /// Jobs whose completion time changed.
    pub impacted: usize,
    /// Of the impacted, jobs that finished strictly earlier.
    pub earlier: usize,
    /// Of the impacted, jobs that finished strictly later.
    pub later: usize,
    /// Total migrations in the reallocation run.
    pub reallocations: u64,
    /// `impacted / n_jobs * 100`.
    pub pct_impacted: f64,
    /// `earlier / impacted * 100` (0 when nothing was impacted).
    pub pct_earlier: f64,
    /// Mean response of impacted jobs with reallocation divided by the same
    /// mean without; `< 1` is a gain. 1.0 when nothing was impacted.
    pub rel_avg_response: f64,
}

impl Comparison {
    /// Compare `run` (with reallocation) against `baseline` (without).
    ///
    /// # Panics
    /// Panics if the two runs do not contain exactly the same job ids —
    /// comparing different workloads is always a harness bug.
    pub fn against_baseline(baseline: &RunOutcome, run: &RunOutcome) -> Comparison {
        assert_eq!(
            baseline.records.len(),
            run.records.len(),
            "runs must cover the same jobs"
        );
        let mut impacted = 0usize;
        let mut earlier = 0usize;
        let mut later = 0usize;
        let mut resp_base: u128 = 0;
        let mut resp_run: u128 = 0;
        for (id, b) in &baseline.records {
            let r = run
                .records
                .get(id)
                .unwrap_or_else(|| panic!("job {id} missing from reallocation run"));
            if r.completion != b.completion {
                impacted += 1;
                if r.completion < b.completion {
                    earlier += 1;
                } else {
                    later += 1;
                }
                resp_base += u128::from(b.response().as_secs());
                resp_run += u128::from(r.response().as_secs());
            }
        }
        let n_jobs = baseline.records.len();
        let pct_impacted = if n_jobs == 0 {
            0.0
        } else {
            impacted as f64 / n_jobs as f64 * 100.0
        };
        let pct_earlier = if impacted == 0 {
            0.0
        } else {
            earlier as f64 / impacted as f64 * 100.0
        };
        let rel_avg_response = if impacted == 0 || resp_base == 0 {
            1.0
        } else {
            resp_run as f64 / resp_base as f64
        };
        Comparison {
            n_jobs,
            impacted,
            earlier,
            later,
            reallocations: run.total_reallocations,
            pct_impacted,
            pct_earlier,
            rel_avg_response,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, submit: u64, start: u64, completion: u64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            submit: SimTime(submit),
            start: SimTime(start),
            completion: SimTime(completion),
            cluster: 0,
            reallocations: 0,
        }
    }

    fn outcome(recs: &[JobRecord]) -> RunOutcome {
        let mut o = RunOutcome::default();
        for r in recs {
            o.push(*r);
        }
        o
    }

    #[test]
    fn response_and_wait() {
        let r = rec(1, 10, 30, 100);
        assert_eq!(r.response(), Duration(90));
        assert_eq!(r.wait(), Duration(20));
    }

    #[test]
    fn identical_runs_have_no_impact() {
        let a = outcome(&[rec(1, 0, 0, 10), rec(2, 0, 10, 30)]);
        let c = Comparison::against_baseline(&a, &a.clone());
        assert_eq!(c.impacted, 0);
        assert_eq!(c.pct_impacted, 0.0);
        assert_eq!(c.pct_earlier, 0.0);
        assert_eq!(c.rel_avg_response, 1.0);
    }

    #[test]
    fn impacted_jobs_counted_and_classified() {
        let base = outcome(&[
            rec(1, 0, 0, 100),
            rec(2, 0, 0, 100),
            rec(3, 0, 0, 100),
            rec(4, 0, 0, 100),
        ]);
        // Job 1 earlier, job 2 later, jobs 3-4 unchanged.
        let run = outcome(&[
            rec(1, 0, 0, 50),
            rec(2, 0, 0, 200),
            rec(3, 0, 0, 100),
            rec(4, 0, 0, 100),
        ]);
        let c = Comparison::against_baseline(&base, &run);
        assert_eq!(c.impacted, 2);
        assert_eq!(c.earlier, 1);
        assert_eq!(c.later, 1);
        assert_eq!(c.pct_impacted, 50.0);
        assert_eq!(c.pct_earlier, 50.0);
        // Impacted responses: base 100+100=200, run 50+200=250.
        assert!((c.rel_avg_response - 1.25).abs() < 1e-12);
    }

    #[test]
    fn rel_avg_response_gain() {
        let base = outcome(&[rec(1, 0, 0, 1000), rec(2, 0, 0, 500)]);
        let run = outcome(&[rec(1, 0, 0, 400), rec(2, 0, 0, 350)]);
        let c = Comparison::against_baseline(&base, &run);
        assert_eq!(c.impacted, 2);
        assert_eq!(c.pct_earlier, 100.0);
        assert!((c.rel_avg_response - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unchanged_jobs_excluded_from_response_ratio() {
        // A huge unchanged job must not dilute the ratio.
        let base = outcome(&[rec(1, 0, 0, 100), rec(2, 0, 0, 1_000_000)]);
        let run = outcome(&[rec(1, 0, 0, 50), rec(2, 0, 0, 1_000_000)]);
        let c = Comparison::against_baseline(&base, &run);
        assert_eq!(c.impacted, 1);
        assert!((c.rel_avg_response - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same jobs")]
    fn mismatched_job_sets_panic() {
        let a = outcome(&[rec(1, 0, 0, 10)]);
        let b = outcome(&[rec(1, 0, 0, 10), rec(2, 0, 0, 10)]);
        let _ = Comparison::against_baseline(&a, &b);
    }

    #[test]
    fn outcome_aggregates() {
        let mut o = outcome(&[rec(1, 0, 10, 110), rec(2, 50, 60, 160)]);
        assert_eq!(o.len(), 2);
        assert_eq!(o.makespan, SimTime(160));
        assert!((o.mean_response() - 110.0).abs() < 1e-12);
        assert!((o.mean_wait() - 10.0).abs() < 1e-12);
        o.records.get_mut(&JobId(1)).unwrap().reallocations = 3;
        assert_eq!(o.max_job_reallocations(), 3);
    }

    #[test]
    fn empty_outcome_defaults() {
        let o = RunOutcome::default();
        assert!(o.is_empty());
        assert_eq!(o.mean_response(), 0.0);
        assert_eq!(o.max_job_reallocations(), 0);
    }
}
