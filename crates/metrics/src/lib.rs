//! # grid-metrics — evaluation metrics and paper-style tables
//!
//! Implements the four metrics of the paper's §3.4 and the table layout of
//! its §4, so the `tables` binary can print rows directly comparable to
//! Tables 2–17:
//!
//! * **System metrics** — percentage of jobs *impacted* by reallocation
//!   (completion time changed vs. the no-reallocation reference run) and
//!   the *number of reallocations* (a job migrated twice counts twice).
//! * **User metrics** — percentage of impacted jobs *finishing earlier*,
//!   and the *relative average response time* of impacted jobs (a value of
//!   0.85 means reallocation cut the average response time by 15%).

pub mod compare;
pub mod ser;
pub mod table;
pub mod timeseries;

pub use compare::{Comparison, JobRecord, RunOutcome};
pub use table::PaperTable;
