//! JSON encoding of run outcomes and comparisons (via `grid-ser`).
//!
//! These replace the serde derives the types carried when the workspace
//! could pull serde from crates.io. Encoding is *canonical* — object keys
//! sorted, `BTreeMap`-ordered job records — so the same outcome always
//! produces identical bytes; the campaign result cache depends on that.

use std::collections::BTreeMap;

use grid_batch::JobId;
use grid_des::SimTime;
use grid_ser::json::SerError;
use grid_ser::Value;

use crate::compare::{Comparison, JobRecord, RunOutcome};

impl JobRecord {
    /// Compact array form `[id, submit, start, completion, cluster, reallocations]`.
    pub fn to_json(&self) -> Value {
        Value::Arr(vec![
            Value::UInt(self.id.0),
            Value::UInt(self.submit.0),
            Value::UInt(self.start.0),
            Value::UInt(self.completion.0),
            Value::UInt(self.cluster as u64),
            Value::UInt(u64::from(self.reallocations)),
        ])
    }

    /// Decode the array form.
    pub fn from_json(v: &Value) -> Result<JobRecord, SerError> {
        let arr = v
            .as_arr()
            .filter(|a| a.len() == 6)
            .ok_or_else(|| SerError::new("job record must be a 6-element array"))?;
        let n = |i: usize, what: &str| -> Result<u64, SerError> {
            arr[i]
                .as_u64()
                .ok_or_else(|| SerError::new(format!("job record {what} must be an integer")))
        };
        Ok(JobRecord {
            id: JobId(n(0, "id")?),
            submit: SimTime(n(1, "submit")?),
            start: SimTime(n(2, "start")?),
            completion: SimTime(n(3, "completion")?),
            cluster: n(4, "cluster")? as usize,
            reallocations: u32::try_from(n(5, "reallocations")?)
                .map_err(|_| SerError::new("reallocation count overflows u32"))?,
        })
    }
}

impl RunOutcome {
    /// Full JSON object including per-job records.
    pub fn to_json(&self) -> Value {
        let mut obj = Value::object();
        obj.insert("total_reallocations", self.total_reallocations);
        obj.insert("active_ticks", self.active_ticks);
        obj.insert("total_ticks", self.total_ticks);
        obj.insert("contract_violations", self.contract_violations);
        // Only fault-injected runs carry the eviction counter; omitting
        // the zero keeps healthy-grid records byte-identical to every
        // record written before fault injection existed.
        if self.outage_evictions > 0 {
            obj.insert("outage_evictions", self.outage_evictions);
        }
        obj.insert("makespan", self.makespan.0);
        obj.insert(
            "records",
            Value::Arr(self.records.values().map(JobRecord::to_json).collect()),
        );
        obj
    }

    /// Decode [`RunOutcome::to_json`].
    pub fn from_json(v: &Value) -> Result<RunOutcome, SerError> {
        let mut records: BTreeMap<JobId, JobRecord> = BTreeMap::new();
        for rec in v.req_arr("records")? {
            let rec = JobRecord::from_json(rec)?;
            records.insert(rec.id, rec);
        }
        Ok(RunOutcome {
            records,
            total_reallocations: v.req_u64("total_reallocations")?,
            active_ticks: v.req_u64("active_ticks")?,
            total_ticks: v.req_u64("total_ticks")?,
            // Absent in records written before contract checking existed.
            contract_violations: v
                .get("contract_violations")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            // Absent in healthy-grid records (and all pre-fault ones).
            outage_evictions: v
                .get("outage_evictions")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            makespan: SimTime(v.req_u64("makespan")?),
        })
    }
}

impl Comparison {
    /// JSON object with every §3.4 metric field.
    pub fn to_json(&self) -> Value {
        let mut obj = Value::object();
        obj.insert("n_jobs", self.n_jobs);
        obj.insert("impacted", self.impacted);
        obj.insert("earlier", self.earlier);
        obj.insert("later", self.later);
        obj.insert("reallocations", self.reallocations);
        obj.insert("pct_impacted", self.pct_impacted);
        obj.insert("pct_earlier", self.pct_earlier);
        obj.insert("rel_avg_response", self.rel_avg_response);
        obj
    }

    /// Decode [`Comparison::to_json`].
    pub fn from_json(v: &Value) -> Result<Comparison, SerError> {
        Ok(Comparison {
            n_jobs: v.req_u64("n_jobs")? as usize,
            impacted: v.req_u64("impacted")? as usize,
            earlier: v.req_u64("earlier")? as usize,
            later: v.req_u64("later")? as usize,
            reallocations: v.req_u64("reallocations")?,
            pct_impacted: v.req_f64("pct_impacted")?,
            pct_earlier: v.req_f64("pct_earlier")?,
            rel_avg_response: v.req_f64("rel_avg_response")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> RunOutcome {
        let mut o = RunOutcome::default();
        for i in 0..5u64 {
            o.push(JobRecord {
                id: JobId(i),
                submit: SimTime(i * 10),
                start: SimTime(i * 10 + 5),
                completion: SimTime(i * 10 + 50),
                cluster: (i % 3) as usize,
                reallocations: (i % 2) as u32,
            });
        }
        o.total_reallocations = 2;
        o.active_ticks = 1;
        o.total_ticks = 4;
        o
    }

    #[test]
    fn outcome_roundtrip() {
        let o = outcome();
        let v = o.to_json();
        let back = RunOutcome::from_json(&v).unwrap();
        assert_eq!(back.records, o.records);
        assert_eq!(back.total_reallocations, o.total_reallocations);
        assert_eq!(back.makespan, o.makespan);
        assert_eq!(back.total_ticks, o.total_ticks);
    }

    #[test]
    fn outcome_encoding_is_byte_stable() {
        assert_eq!(outcome().to_json().encode(), outcome().to_json().encode());
    }

    #[test]
    fn outage_evictions_serialise_only_when_present() {
        // Healthy runs stay byte-identical to pre-fault records…
        let clean = outcome().to_json().encode();
        assert!(!clean.contains("outage_evictions"));
        // …while fault runs round-trip the counter.
        let mut faulty = outcome();
        faulty.outage_evictions = 3;
        let encoded = faulty.to_json().encode();
        assert!(encoded.contains("\"outage_evictions\":3"));
        let back = RunOutcome::from_json(&faulty.to_json()).unwrap();
        assert_eq!(back.outage_evictions, 3);
        assert_eq!(
            RunOutcome::from_json(&outcome().to_json())
                .unwrap()
                .outage_evictions,
            0
        );
    }

    #[test]
    fn missing_contract_violations_defaults_to_zero() {
        let mut v = outcome().to_json();
        if let Value::Obj(m) = &mut v {
            m.remove("contract_violations");
        }
        assert_eq!(RunOutcome::from_json(&v).unwrap().contract_violations, 0);
    }

    #[test]
    fn comparison_roundtrip() {
        let c = Comparison {
            n_jobs: 100,
            impacted: 10,
            earlier: 7,
            later: 3,
            reallocations: 5,
            pct_impacted: 10.0,
            pct_earlier: 70.0,
            rel_avg_response: 0.9,
        };
        let back = Comparison::from_json(&c.to_json()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn malformed_records_rejected() {
        assert!(JobRecord::from_json(&Value::Arr(vec![Value::UInt(1)])).is_err());
        assert!(RunOutcome::from_json(&Value::object()).is_err());
    }
}
