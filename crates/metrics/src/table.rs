//! Paper-style result tables.
//!
//! Tables 2–17 of the paper all share one layout: rows are grouped by batch
//! algorithm (FCFS, CBF), one row per heuristic, one column per trace
//! (jan…jun, pwa-g5k) and — for most tables — a final AVG column holding
//! the row mean. [`PaperTable`] renders that layout as aligned ASCII.

use std::fmt;

/// One row: a heuristic name and one value per scenario column.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Heuristic label, e.g. `MinMin` or `MinMin-C`.
    pub label: String,
    /// One value per column (same length as `PaperTable::columns`).
    pub values: Vec<f64>,
}

/// A group of rows sharing a batch policy label (the paper's FCFS / CBF
/// blocks).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Group {
    /// Group label, e.g. `FCFS`.
    pub label: String,
    /// The rows of the group.
    pub rows: Vec<Row>,
}

/// An entire table in the paper's layout.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperTable {
    /// Caption printed above the table.
    pub title: String,
    /// Scenario column headers (without the AVG column).
    pub columns: Vec<String>,
    /// Row groups (FCFS block, CBF block).
    pub groups: Vec<Group>,
    /// Append an AVG column with the mean of each row.
    pub with_avg: bool,
    /// Number of decimal places.
    pub decimals: usize,
}

impl PaperTable {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>, with_avg: bool) -> Self {
        PaperTable {
            title: title.into(),
            columns,
            groups: Vec::new(),
            with_avg,
            decimals: 2,
        }
    }

    /// Set the number of decimals (builder style).
    pub fn decimals(mut self, d: usize) -> Self {
        self.decimals = d;
        self
    }

    /// Append a row to the group named `group` (created on demand).
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the number of columns.
    pub fn push_row(&mut self, group: &str, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match column count"
        );
        let g = match self.groups.iter_mut().find(|g| g.label == group) {
            Some(g) => g,
            None => {
                self.groups.push(Group {
                    label: group.to_string(),
                    rows: Vec::new(),
                });
                self.groups.last_mut().expect("just pushed")
            }
        };
        g.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Mean of a row's values (the AVG column).
    fn row_avg(values: &[f64]) -> f64 {
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Look up a value by group, row label and column header.
    pub fn get(&self, group: &str, label: &str, column: &str) -> Option<f64> {
        let ci = self.columns.iter().position(|c| c == column)?;
        self.groups
            .iter()
            .find(|g| g.label == group)?
            .rows
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.values[ci])
    }

    /// The AVG value of a row.
    pub fn get_avg(&self, group: &str, label: &str) -> Option<f64> {
        self.groups
            .iter()
            .find(|g| g.label == group)?
            .rows
            .iter()
            .find(|r| r.label == label)
            .map(|r| Self::row_avg(&r.values))
    }
}

impl fmt::Display for PaperTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers: Vec<String> = vec!["Batch".into(), "Heuristic".into()];
        headers.extend(self.columns.iter().cloned());
        if self.with_avg {
            headers.push("AVG".into());
        }
        // Gather all body cells to compute column widths.
        let mut body: Vec<Vec<String>> = Vec::new();
        for g in &self.groups {
            for (i, row) in g.rows.iter().enumerate() {
                let mut cells = Vec::with_capacity(headers.len());
                cells.push(if i == 0 {
                    g.label.clone()
                } else {
                    String::new()
                });
                cells.push(row.label.clone());
                for v in &row.values {
                    cells.push(format!("{:.*}", self.decimals, v));
                }
                if self.with_avg {
                    cells.push(format!("{:.*}", self.decimals, Self::row_avg(&row.values)));
                }
                body.push(cells);
            }
        }
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &body {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        writeln!(f, "{sep}")?;
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i < 2 {
                        format!(" {:<w$} ", c, w = widths[i])
                    } else {
                        format!(" {:>w$} ", c, w = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("|")
        };
        writeln!(f, "{}", fmt_row(&headers))?;
        writeln!(f, "{sep}")?;
        let mut prev_group_start = 0;
        for g in &self.groups {
            if prev_group_start > 0 {
                writeln!(f, "{sep}")?;
            }
            for row in &body[prev_group_start..prev_group_start + g.rows.len()] {
                writeln!(f, "{}", fmt_row(row))?;
            }
            prev_group_start += g.rows.len();
        }
        writeln!(f, "{sep}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PaperTable {
        let mut t = PaperTable::new("Table X: demo", vec!["jan".into(), "feb".into()], true);
        t.push_row("FCFS", "Mct", vec![1.0, 3.0]);
        t.push_row("FCFS", "MinMin", vec![2.0, 2.0]);
        t.push_row("CBF", "Mct", vec![4.0, 4.0]);
        t
    }

    #[test]
    fn get_and_avg() {
        let t = sample();
        assert_eq!(t.get("FCFS", "Mct", "jan"), Some(1.0));
        assert_eq!(t.get("FCFS", "Mct", "feb"), Some(3.0));
        assert_eq!(t.get_avg("FCFS", "Mct"), Some(2.0));
        assert_eq!(t.get("CBF", "Mct", "jan"), Some(4.0));
        assert_eq!(t.get("CBF", "Nope", "jan"), None);
        assert_eq!(t.get("FCFS", "Mct", "mar"), None);
    }

    #[test]
    fn render_contains_all_cells() {
        let s = sample().to_string();
        assert!(s.contains("Table X: demo"));
        for needle in [
            "FCFS", "CBF", "Mct", "MinMin", "jan", "feb", "AVG", "1.00", "2.00", "4.00",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn group_label_printed_once() {
        let s = sample().to_string();
        assert_eq!(s.matches("FCFS").count(), 1, "{s}");
    }

    #[test]
    fn decimals_respected() {
        let mut t = PaperTable::new("t", vec!["c".into()], false).decimals(0);
        t.push_row("G", "r", vec![3.7]);
        assert!(t.to_string().contains(" 4 "), "{t}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = PaperTable::new("t", vec!["a".into(), "b".into()], false);
        t.push_row("G", "r", vec![1.0]);
    }

    #[test]
    fn without_avg_column() {
        let mut t = PaperTable::new("t", vec!["a".into()], false);
        t.push_row("G", "r", vec![1.0]);
        assert!(!t.to_string().contains("AVG"));
    }
}
