//! Post-hoc time series derived from run outcomes.
//!
//! The paper explains its month-to-month differences by load ("if the
//! platform is quite empty … when the platform is very loaded", §4.1).
//! These helpers reconstruct the load story from the per-job records of a
//! finished run: how many jobs were waiting, and how many cores were busy,
//! at any instant — the two curves that make Tables 2–17 interpretable.

use grid_batch::{JobId, JobSpec};
use grid_des::SimTime;

use crate::compare::RunOutcome;

/// Evenly spaced sample instants across `[0, end]`.
///
/// Degenerate requests degrade instead of tripping: zero samples yield
/// an empty series, one sample is the origin, and a zero `end` (an
/// empty outcome, or every job finishing at t = 0) pins every instant
/// to the origin — callers get flat series, never a panic.
fn sample_points(end: SimTime, samples: usize) -> Vec<SimTime> {
    match samples {
        0 => Vec::new(),
        1 => vec![SimTime(0)],
        _ => {
            let end = end.as_secs();
            (0..samples)
                .map(|i| SimTime(end * i as u64 / (samples as u64 - 1)))
                .collect()
        }
    }
}

/// Number of jobs waiting (submitted, not yet started) at each sample
/// instant.
pub fn queue_length_series(outcome: &RunOutcome, samples: usize) -> Vec<(SimTime, usize)> {
    let points = sample_points(outcome.makespan, samples);
    // Sweep: +1 at submit, -1 at start.
    let mut deltas: Vec<(SimTime, i64)> = Vec::with_capacity(outcome.records.len() * 2);
    for r in outcome.records.values() {
        deltas.push((r.submit, 1));
        deltas.push((r.start, -1));
    }
    deltas.sort_unstable_by_key(|&(t, d)| (t, d));
    let mut out = Vec::with_capacity(samples);
    let mut level = 0i64;
    let mut i = 0;
    for p in points {
        while i < deltas.len() && deltas[i].0 <= p {
            level += deltas[i].1;
            i += 1;
        }
        debug_assert!(level >= 0);
        out.push((p, level.max(0) as usize));
    }
    out
}

/// Fraction of `total_procs` busy at each sample instant. Processor counts
/// come from the original job list (`jobs` must cover every record).
pub fn utilization_series(
    jobs: &[JobSpec],
    outcome: &RunOutcome,
    total_procs: u32,
    samples: usize,
) -> Vec<(SimTime, f64)> {
    assert!(total_procs > 0);
    let procs_of = |id: JobId| -> i64 {
        jobs.iter()
            .find(|j| j.id == id)
            .map(|j| i64::from(j.procs))
            .unwrap_or_else(|| panic!("job {id} missing from the job list"))
    };
    let points = sample_points(outcome.makespan, samples);
    let mut deltas: Vec<(SimTime, i64)> = Vec::with_capacity(outcome.records.len() * 2);
    for r in outcome.records.values() {
        let p = procs_of(r.id);
        if r.start < r.completion {
            deltas.push((r.start, p));
            deltas.push((r.completion, -p));
        }
    }
    deltas.sort_unstable_by_key(|&(t, d)| (t, d));
    let mut out = Vec::with_capacity(samples);
    let mut busy = 0i64;
    let mut i = 0;
    for p in points {
        while i < deltas.len() && deltas[i].0 <= p {
            busy += deltas[i].1;
            i += 1;
        }
        debug_assert!(busy >= 0);
        out.push((p, busy.max(0) as f64 / f64::from(total_procs)));
    }
    out
}

/// Render a series as a unicode sparkline (one character per sample).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return BARS[0].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|v| {
            let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            BARS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::JobRecord;

    fn rec(id: u64, submit: u64, start: u64, completion: u64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            submit: SimTime(submit),
            start: SimTime(start),
            completion: SimTime(completion),
            cluster: 0,
            reallocations: 0,
        }
    }

    fn outcome(recs: &[JobRecord]) -> RunOutcome {
        let mut o = RunOutcome::default();
        for r in recs {
            o.push(*r);
        }
        o
    }

    #[test]
    fn queue_length_tracks_waiting_jobs() {
        // Job 0 waits [0, 50), job 1 waits [10, 80).
        let o = outcome(&[rec(0, 0, 50, 100), rec(1, 10, 80, 100)]);
        let series = queue_length_series(&o, 11); // every 10 s over [0, 100]
        let at = |t: u64| series.iter().find(|(p, _)| p.as_secs() == t).unwrap().1;
        assert_eq!(at(0), 1); // job 0 waiting
        assert_eq!(at(10), 2); // both waiting
        assert_eq!(at(50), 1); // job 0 started
        assert_eq!(at(80), 0); // both started
    }

    #[test]
    fn utilization_tracks_running_cores() {
        let jobs = vec![
            JobSpec::new(0, 0, 4, 100, 100),
            JobSpec::new(1, 0, 4, 50, 50),
        ];
        let o = outcome(&[rec(0, 0, 0, 100), rec(1, 0, 50, 100)]);
        let series = utilization_series(&jobs, &o, 8, 11);
        let at = |t: u64| series.iter().find(|(p, _)| p.as_secs() == t).unwrap().1;
        assert!((at(0) - 0.5).abs() < 1e-9); // 4 of 8 busy
        assert!((at(50) - 1.0).abs() < 1e-9); // both running
        assert!((at(100) - 0.0).abs() < 1e-9); // all done
    }

    #[test]
    fn utilization_never_negative_or_above_input_capacity() {
        let jobs: Vec<JobSpec> = (0..20).map(|i| JobSpec::new(i, i, 2, 30, 40)).collect();
        let recs: Vec<JobRecord> = jobs
            .iter()
            .map(|j| {
                rec(
                    j.id.0,
                    j.submit.as_secs(),
                    j.submit.as_secs() + 5,
                    j.submit.as_secs() + 35,
                )
            })
            .collect();
        let o = outcome(&recs);
        for (_, u) in utilization_series(&jobs, &o, 64, 50) {
            assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
        }
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert!(s.starts_with('▁'));
    }

    #[test]
    #[should_panic(expected = "missing from the job list")]
    fn utilization_requires_matching_jobs() {
        let o = outcome(&[rec(7, 0, 0, 10)]);
        let _ = utilization_series(&[], &o, 4, 3);
    }

    #[test]
    fn empty_outcome_yields_flat_series() {
        let o = RunOutcome::default();
        let q = queue_length_series(&o, 5);
        assert_eq!(q.len(), 5);
        assert!(q.iter().all(|&(_, n)| n == 0));
    }

    #[test]
    fn degenerate_sample_counts_degrade_gracefully() {
        let o = outcome(&[rec(0, 0, 50, 100)]);
        assert!(queue_length_series(&o, 0).is_empty());
        let one = queue_length_series(&o, 1);
        assert_eq!(one, vec![(SimTime(0), 1)], "origin sample: job 0 waiting");
        let jobs = vec![JobSpec::new(0, 0, 4, 100, 100)];
        assert!(utilization_series(&jobs, &o, 8, 0).is_empty());
        assert_eq!(utilization_series(&jobs, &o, 8, 1).len(), 1);
    }

    #[test]
    fn zero_makespan_outcome_yields_flat_origin_series() {
        // Every record at t = 0: makespan stays 0, which used to trip
        // the sampler's end > 0 assumption.
        let o = outcome(&[rec(0, 0, 0, 0), rec(1, 0, 0, 0)]);
        assert_eq!(o.makespan, SimTime(0));
        let q = queue_length_series(&o, 5);
        assert_eq!(q.len(), 5);
        assert!(q.iter().all(|&(p, n)| p == SimTime(0) && n == 0));
        let jobs = vec![JobSpec::new(0, 0, 2, 1, 1), JobSpec::new(1, 0, 2, 1, 1)];
        let u = utilization_series(&jobs, &o, 4, 5);
        assert!(u.iter().all(|&(p, busy)| p == SimTime(0) && busy == 0.0));
    }
}
