//! Property-based tests for metric computation and table rendering.

use grid_batch::JobId;
use grid_des::SimTime;
use grid_metrics::{Comparison, JobRecord, PaperTable, RunOutcome};
use proptest::prelude::*;

/// An arbitrary pair of runs over the same jobs.
fn run_pair() -> impl Strategy<Value = (RunOutcome, RunOutcome)> {
    prop::collection::vec(
        (
            0u64..10_000,
            0u64..5_000,
            0u64..5_000,
            0u64..5_000,
            0u64..5_000,
        ),
        1..80,
    )
    .prop_map(|raw| {
        let mut a = RunOutcome::default();
        let mut b = RunOutcome::default();
        for (i, &(submit, wait_a, run_a, wait_b, run_b)) in raw.iter().enumerate() {
            let id = JobId(i as u64);
            a.push(JobRecord {
                id,
                submit: SimTime(submit),
                start: SimTime(submit + wait_a),
                completion: SimTime(submit + wait_a + run_a),
                cluster: 0,
                reallocations: 0,
            });
            b.push(JobRecord {
                id,
                submit: SimTime(submit),
                start: SimTime(submit + wait_b),
                completion: SimTime(submit + wait_b + run_b),
                cluster: 1,
                reallocations: (i % 3) as u32,
            });
        }
        (a, b)
    })
}

proptest! {
    /// Internal consistency of the §3.4 metrics for arbitrary run pairs.
    #[test]
    fn comparison_invariants((base, run) in run_pair()) {
        let c = Comparison::against_baseline(&base, &run);
        prop_assert_eq!(c.n_jobs, base.records.len());
        prop_assert_eq!(c.earlier + c.later, c.impacted);
        prop_assert!(c.impacted <= c.n_jobs);
        prop_assert!((0.0..=100.0).contains(&c.pct_impacted));
        prop_assert!((0.0..=100.0).contains(&c.pct_earlier));
        prop_assert!(c.rel_avg_response > 0.0 || c.impacted == 0);
        // Self-comparison is the identity.
        let self_cmp = Comparison::against_baseline(&base, &base.clone());
        prop_assert_eq!(self_cmp.impacted, 0);
        prop_assert_eq!(self_cmp.rel_avg_response, 1.0);
    }

    /// Symmetry: swapping the runs swaps earlier/later and inverts the
    /// response ratio (when defined).
    #[test]
    fn comparison_symmetry((base, run) in run_pair()) {
        let fwd = Comparison::against_baseline(&base, &run);
        let rev = Comparison::against_baseline(&run, &base);
        prop_assert_eq!(fwd.impacted, rev.impacted);
        prop_assert_eq!(fwd.earlier, rev.later);
        prop_assert_eq!(fwd.later, rev.earlier);
        if fwd.impacted > 0 && fwd.rel_avg_response > 0.0 {
            prop_assert!((fwd.rel_avg_response * rev.rel_avg_response - 1.0).abs() < 1e-9);
        }
    }

    /// Makespan and mean response are consistent with the records.
    #[test]
    fn outcome_aggregates((base, _) in run_pair()) {
        let max_completion = base.records.values().map(|r| r.completion).max().unwrap();
        prop_assert_eq!(base.makespan, max_completion);
        let mean = base.mean_response();
        let lo = base.records.values().map(|r| r.response().as_secs()).min().unwrap() as f64;
        let hi = base.records.values().map(|r| r.response().as_secs()).max().unwrap() as f64;
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }

    /// Table rendering never loses cells: every value appears with the
    /// requested precision and rows stay queryable.
    #[test]
    fn table_roundtrip(
        values in prop::collection::vec(0.0f64..10_000.0, 1..30),
        cols in 1usize..6,
    ) {
        let n_rows = values.len().div_ceil(cols);
        let mut padded = values.clone();
        padded.resize(n_rows * cols, 0.0);
        let columns: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
        let mut t = PaperTable::new("prop", columns, true).decimals(2);
        for r in 0..n_rows {
            t.push_row("G", format!("r{r}"), padded[r * cols..(r + 1) * cols].to_vec());
        }
        for r in 0..n_rows {
            for c in 0..cols {
                let got = t.get("G", &format!("r{r}"), &format!("c{c}")).unwrap();
                prop_assert_eq!(got, padded[r * cols + c]);
            }
            let avg = t.get_avg("G", &format!("r{r}")).unwrap();
            let expect: f64 =
                padded[r * cols..(r + 1) * cols].iter().sum::<f64>() / cols as f64;
            prop_assert!((avg - expect).abs() < 1e-9);
        }
        let rendered = t.to_string();
        prop_assert!(rendered.contains("AVG"));
        prop_assert_eq!(rendered.lines().filter(|l| l.contains('|')).count(), n_rows + 1);
    }
}
