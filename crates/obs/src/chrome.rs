//! Chrome trace-event export: one lane per cluster, loadable in
//! Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//!
//! Mapping from recorder content to the trace-event model:
//!
//! * pid 0 = the clusters; each cluster gets its own tid (the lane
//!   index) named after the cluster via `thread_name` metadata.
//! * pid 1 = the driver (meta-scheduler): reallocation ticks,
//!   migrations, and the per-tick gauge series as counter tracks.
//! * `job.run` and `outage` events carry `start`/`end` fields and
//!   become duration (`X`) slices on their cluster lane; scheduler
//!   decisions (`sched.repair`, `sched.rebuild`) and everything else
//!   become instants (`i`) carrying their fields as args.
//!
//! Sim-time seconds map to trace microseconds, so a one-hour
//! reallocation period renders as 3.6 s of trace time — comfortable to
//! navigate for month-long scenarios.

use grid_ser::Value;

use crate::{Field, Recorder};

/// Sim-seconds → trace microseconds.
fn ts(secs: u64) -> u64 {
    secs.saturating_mul(1_000_000)
}

fn meta(name: &str, pid: u64, tid: u64, value: &str) -> Value {
    let mut args = Value::object();
    args.insert("name", value);
    let mut v = Value::object();
    v.insert("name", name);
    v.insert("ph", "M");
    v.insert("pid", pid);
    v.insert("tid", tid);
    v.insert("args", args);
    v
}

fn base(name: &str, ph: &str, pid: u64, tid: u64, t_us: u64) -> Value {
    let mut v = Value::object();
    v.insert("name", name);
    v.insert("ph", ph);
    v.insert("pid", pid);
    v.insert("tid", tid);
    v.insert("ts", t_us);
    v
}

fn args_of(fields: &[(&'static str, Field)]) -> Value {
    let mut args = Value::object();
    for &(name, field) in fields {
        args.insert(name, field);
    }
    args
}

pub(crate) fn chrome_trace(recorder: &Recorder) -> String {
    let mut events: Vec<Value> = Vec::new();

    // Process / thread naming so the viewer shows one labelled lane per
    // cluster.
    events.push(meta("process_name", 0, 0, "clusters"));
    events.push(meta("process_name", 1, 0, "driver"));
    events.push(meta("thread_name", 1, 0, "meta-scheduler"));
    for (&lane, name) in recorder.lanes() {
        events.push(meta("thread_name", 0, u64::from(lane), name));
    }

    for e in recorder.events() {
        let (pid, tid) = match e.lane {
            Some(lane) => (0u64, u64::from(lane)),
            None => (1u64, 0u64),
        };
        match e.kind {
            // Duration slices: need start/end fields.
            "job.run" | "outage" => {
                let start = e.field_u64("start").unwrap_or(e.t.as_secs());
                let end = e.field_u64("end").unwrap_or(start);
                let name = match e.kind {
                    "job.run" => format!("job {}", e.field_u64("id").unwrap_or(0)),
                    _ => e.kind.to_string(),
                };
                let mut v = base(&name, "X", pid, tid, ts(start));
                v.insert("dur", ts(end.saturating_sub(start)));
                v.insert("args", args_of(&e.fields));
                events.push(v);
            }
            // Everything else is an instant at its sim-time.
            _ => {
                let mut v = base(e.kind, "i", pid, tid, ts(e.t.as_secs()));
                v.insert("s", "t");
                v.insert("args", args_of(&e.fields));
                events.push(v);
            }
        }
    }

    // Gauge series as counter tracks on the driver process, one track
    // per (gauge, lane), labelled with the cluster name when known.
    for (&(name, lane), series) in &recorder.gauges {
        let label = match recorder.lanes().get(&lane) {
            Some(cluster) => format!("{name} {cluster}"),
            None => format!("{name} lane{lane}"),
        };
        for &(t, value) in series {
            let mut args = Value::object();
            args.insert("value", value);
            let mut v = base(&label, "C", 1, 0, ts(t.as_secs()));
            v.insert("args", args);
            events.push(v);
        }
    }

    let mut root = Value::object();
    root.insert("traceEvents", Value::Arr(events));
    root.insert("displayTimeUnit", "ms");
    root.encode()
}

#[cfg(test)]
mod tests {
    use grid_des::SimTime;

    use crate::{Field, Obs};

    #[test]
    fn trace_has_one_named_lane_per_cluster_and_job_slices() {
        let obs = Obs::enabled();
        obs.name_lane(0, "bordeaux");
        obs.name_lane(1, "lyon");
        obs.event(
            SimTime(20),
            "job.run",
            Some(1),
            &[
                ("id", Field::U64(7)),
                ("start", Field::U64(10)),
                ("end", Field::U64(20)),
            ],
        );
        obs.event(
            SimTime(5),
            "sched.repair",
            Some(0),
            &[("from", Field::U64(2))],
        );
        obs.gauge("queue_depth", 1, SimTime(0), 3.0);
        let trace = obs.with(|r| r.chrome_trace()).unwrap();
        let root = grid_ser::Value::parse(&trace).expect("trace parses");
        let events = root.req_arr("traceEvents").unwrap();
        let lane_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .filter(|e| e.get("pid").and_then(|p| p.as_u64()) == Some(0))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
            })
            .collect();
        assert_eq!(lane_names, ["bordeaux", "lyon"]);
        let job = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("job 7"))
            .expect("job slice present");
        assert_eq!(job.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert_eq!(job.get("ts").and_then(|t| t.as_u64()), Some(10_000_000));
        assert_eq!(job.get("dur").and_then(|d| d.as_u64()), Some(10_000_000));
        assert!(trace.contains("queue_depth lyon"));
        assert!(trace.contains("sched.repair"));
    }
}
