//! Dependency-free HTTP endpoint for live telemetry.
//!
//! The build container has no registry access, so no hyper/axum: this
//! is a `std::net::TcpListener` accept loop on one background thread,
//! serving GET requests only. It is deliberately minimal — bounded
//! request read (8 KiB), per-connection read/write timeouts, no
//! keep-alive — because its one job is to let `curl` and a Prometheus
//! scraper read `/metrics`, `/status` and `/healthz` off a running
//! fleet without perturbing it.
//!
//! Shutdown is cooperative: [`HttpServer::shutdown`] (also run on
//! `Drop`) raises an atomic flag and unblocks the accept loop with a
//! self-connection, then joins the thread — no request is torn mid-
//! write.

use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest request head we accept; plenty for `GET /path HTTP/1.1` plus
/// scraper headers, and a hard bound against slow-loris payloads.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout (both directions).
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// One response from a route handler.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 text/plain` response.
    pub fn text(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A `200 application/json` response.
    pub fn json(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A `200` Prometheus text-exposition response.
    pub fn metrics(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into(),
        }
    }

    fn status_line(status: u16) -> &'static str {
        match status {
            200 => "200 OK",
            400 => "400 Bad Request",
            404 => "404 Not Found",
            405 => "405 Method Not Allowed",
            _ => "500 Internal Server Error",
        }
    }
}

/// A running telemetry endpoint; dropping it shuts the listener down.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl HttpServer {
    /// Bind `addr` and serve GET requests on a background thread.
    ///
    /// `handler` maps a request path (e.g. `/metrics`) to a response;
    /// returning `None` yields a 404. It runs on the server thread, so
    /// it must be cheap or lock briefly. Use port 0 to bind an
    /// ephemeral port and read it back via [`HttpServer::local_addr`].
    pub fn serve<F>(addr: &str, handler: F) -> io::Result<HttpServer>
    where
        F: Fn(&str) -> Option<Response> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("obs-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Inline handling: requests are tiny, handlers are
                    // cheap, and one slow client cannot wedge the loop
                    // past the IO timeout.
                    let _ = handle_connection(stream, &handler);
                }
            })?;
        Ok(HttpServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock the accept loop, and join the thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            // `incoming()` blocks in accept; a throwaway self-connection
            // wakes it so it can observe the flag. An unspecified bind
            // address (0.0.0.0) is not connectable — aim at loopback.
            let target = match self.addr.ip() {
                ip if ip.is_unspecified() => {
                    SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), self.addr.port())
                }
                _ => self.addr,
            };
            let _ = TcpStream::connect_timeout(&target, IO_TIMEOUT);
            let _ = thread.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection<F>(mut stream: TcpStream, handler: &F) -> io::Result<()>
where
    F: Fn(&str) -> Option<Response>,
{
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    // Read until the end of the request head, the size bound, or EOF.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break Some(pos);
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            break None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break None,
        }
    };
    let response = match head_end {
        None => Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: "bad request\n".into(),
        },
        Some(pos) => route(&buf[..pos], handler),
    };
    write_response(&mut stream, &response)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn route<F>(head: &[u8], handler: &F) -> Response
where
    F: Fn(&str) -> Option<Response>,
{
    let head = String::from_utf8_lossy(head);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => {
            return Response {
                status: 400,
                content_type: "text/plain; charset=utf-8",
                body: "bad request\n".into(),
            }
        }
    };
    if method != "GET" {
        return Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "method not allowed\n".into(),
        };
    }
    // Strip any query string; routes here are plain paths.
    let path = target.split('?').next().unwrap_or(target);
    match handler(path) {
        Some(r) => r,
        None => Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: "not found\n".into(),
        },
    }
}

fn write_response(stream: &mut TcpStream, r: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        Response::status_line(r.status),
        r.content_type,
        r.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(r.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn serve_test() -> HttpServer {
        HttpServer::serve("127.0.0.1:0", |path| match path {
            "/healthz" => Some(Response::text("ok\n")),
            "/status" => Some(Response::json("{\"ok\":true}")),
            "/metrics" => Some(Response::metrics("x_total 1\n")),
            _ => None,
        })
        .unwrap()
    }

    #[test]
    fn serves_routes_with_content_types() {
        let server = serve_test();
        let addr = server.local_addr();
        let health = get(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");
        let status = get(addr, "GET /status HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(status.contains("application/json"), "{status}");
        assert!(status.ends_with("{\"ok\":true}"), "{status}");
        let metrics = get(addr, "GET /metrics?x=1 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(
            metrics.contains("version=0.0.4"),
            "query string is stripped: {metrics}"
        );
        assert!(metrics.ends_with("x_total 1\n"), "{metrics}");
    }

    #[test]
    fn unknown_path_is_404_and_non_get_is_405() {
        let server = serve_test();
        let addr = server.local_addr();
        let missing = get(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let post = get(addr, "POST /metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
    }

    #[test]
    fn oversized_request_head_is_400() {
        let server = serve_test();
        // Exactly the bound with no head terminator: the server consumes
        // every sent byte, hits the limit, and answers 400 over a clean
        // close (no unread data → no RST racing the response).
        let huge = format!(
            "GET /healthz HTTP/1.1\r\nX-Pad: {}",
            "a".repeat(MAX_REQUEST_BYTES)
        );
        let out = get(server.local_addr(), &huge[..MAX_REQUEST_BYTES]);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
    }

    #[test]
    fn shutdown_joins_and_is_idempotent() {
        let mut server = serve_test();
        let addr = server.local_addr();
        assert!(get(addr, "GET /healthz HTTP/1.1\r\n\r\n").contains("200"));
        server.shutdown();
        server.shutdown();
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || get_may_fail(addr),
            "listener is gone after shutdown"
        );
    }

    // After shutdown the port is closed; on some kernels a queued
    // connection may still be accepted — either way no response arrives.
    fn get_may_fail(addr: SocketAddr) -> bool {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            return true;
        };
        let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut out = String::new();
        stream.read_to_string(&mut out).is_err() || out.is_empty()
    }

    #[test]
    fn drop_shuts_down() {
        let addr = {
            let server = serve_test();
            server.local_addr()
        };
        // Bindable again once dropped (SO_REUSEADDR-free proof the
        // listener thread exited and released the port).
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port released after drop: {rebound:?}");
    }
}
