//! `grid-obs` — deterministic, zero-cost-when-disabled instrumentation.
//!
//! The paper explains its month-to-month result differences by platform
//! load (§4.1); reconstructing that story *post hoc* from finished-run
//! records loses everything the engine knew while it was happening —
//! which decisions the incremental scheduler took, where the probes
//! went, when outages evicted whom. This crate is the live counterpart:
//! a [`Recorder`] the simulation writes counters, gauges, log-bucketed
//! histograms and structured sim-time-stamped events into, plus
//! exporters that turn one run into a JSONL event stream or a Chrome
//! trace-event / Perfetto file with one lane per cluster.
//!
//! Two invariants shape the design:
//!
//! 1. **Zero cost when disabled.** The [`Obs`] handle every component
//!    holds is an `Option` around the shared recorder; the disabled
//!    handle is a `None` check per call site, no locking, no heap
//!    traffic (event fields are `Copy` and passed as a stack slice).
//!    Simulation *outcomes* are byte-identical whether instrumentation
//!    is attached or not — the recorder observes, it never steers.
//! 2. **Determinism.** Everything keyed by sim-time is reproducible:
//!    two identical runs produce byte-identical event streams. Wall
//!    clock readings (span timings) live in a separate section that
//!    only ever reaches sidecar output, never the deterministic
//!    exports.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use grid_des::SimTime;
use grid_ser::Value;

mod chrome;
pub mod http;
pub mod metrics;
mod progress;

pub use http::{HttpServer, Response};
// `metrics::Histogram` stays pathed — the recorder's `Histogram` owns
// the unqualified name at the crate root.
pub use metrics::{Counter, Gauge, MetricsRegistry};
pub use progress::{ProgressView, RunnerRow};

/// One event field value. `Copy` on purpose: call sites build field
/// slices on the stack, so a disabled [`Obs`] costs no allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Field {
    /// Unsigned counter / id / timestamp.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Ratio or other real quantity.
    F64(f64),
    /// Static label (verdicts, phase names).
    Str(&'static str),
}

impl From<Field> for Value {
    fn from(f: Field) -> Value {
        match f {
            Field::U64(v) => Value::UInt(v),
            Field::I64(v) => Value::Int(v),
            Field::F64(v) => Value::Float(v),
            Field::Str(v) => Value::Str(v.to_string()),
        }
    }
}

/// One structured, sim-time-stamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual instant the event happened.
    pub t: SimTime,
    /// Event kind, dot-namespaced (`job.run`, `sched.repair`, …).
    pub kind: &'static str,
    /// Cluster lane the event belongs to, if site-scoped.
    pub lane: Option<u32>,
    /// Named payload fields, in call-site order.
    pub fields: Vec<(&'static str, Field)>,
}

impl Event {
    fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.insert("t", self.t.as_secs());
        v.insert("kind", self.kind);
        if let Some(lane) = self.lane {
            v.insert("lane", lane);
        }
        for &(name, field) in &self.fields {
            v.insert(name, field);
        }
        v
    }

    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<Field> {
        self.fields
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, f)| f)
    }

    /// Field as `u64`, if present and unsigned.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        match self.field(name) {
            Some(Field::U64(v)) => Some(v),
            _ => None,
        }
    }
}

/// Power-of-two-bucketed histogram: value `v` lands in bucket
/// `⌊log2 v⌋ + 1` (zero in bucket 0), so 65 buckets cover all of `u64`
/// with one `u64::leading_zeros` per observation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    fn observe(&mut self, v: u64) {
        let bucket = if v == 0 { 0 } else { 64 - v.leading_zeros() };
        *self.buckets.entry(bucket).or_insert(0) += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Populated `(bucket_floor, count)` pairs; bucket `b` covers
    /// `[2^(b-1), 2^b)` (bucket 0 is exactly zero).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .map(|(&b, &n)| (if b == 0 { 0 } else { 1u64 << (b - 1) }, n))
    }

    fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.insert("count", self.count);
        v.insert("sum", self.sum);
        let mut buckets = Value::object();
        for (floor, n) in self.buckets() {
            buckets.insert(floor.to_string(), n);
        }
        v.insert("buckets", buckets);
        v
    }
}

/// Wall-clock span accumulator. Sidecar-only: wall time is the one
/// non-deterministic thing the recorder holds, so it is excluded from
/// every deterministic export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed spans.
    pub count: u64,
    /// Total wall time across completed spans, nanoseconds.
    pub total_ns: u128,
}

/// The collected telemetry of one instrumented run.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<(&'static str, u32), Vec<(SimTime, f64)>>,
    histograms: BTreeMap<&'static str, Histogram>,
    events: Vec<Event>,
    lanes: BTreeMap<u32, String>,
    spans: BTreeMap<&'static str, SpanStat>,
}

impl Recorder {
    /// Counter value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Per-tick series of `name` on `lane`.
    pub fn gauge_series(&self, name: &'static str, lane: u32) -> &[(SimTime, f64)] {
        self.gauges
            .get(&(name, lane))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Histogram by name, if any observation was made.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Registered `lane → cluster name` mapping.
    pub fn lanes(&self) -> &BTreeMap<u32, String> {
        &self.lanes
    }

    /// Wall-clock span totals (sidecar-only data).
    pub fn spans(&self) -> &BTreeMap<&'static str, SpanStat> {
        &self.spans
    }

    /// The deterministic JSONL event stream: one canonical-JSON object
    /// per line, in emission order. Two identical runs yield identical
    /// bytes.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_value().encode());
            out.push('\n');
        }
        out
    }

    /// Deterministic summary (counters + histograms + per-lane gauge
    /// sample counts). No wall-clock content.
    pub fn summary(&self) -> Value {
        let mut counters = Value::object();
        for (k, v) in &self.counters {
            counters.insert(*k, *v);
        }
        let mut histograms = Value::object();
        for (k, h) in &self.histograms {
            histograms.insert(*k, h.to_value());
        }
        let mut v = Value::object();
        v.insert("counters", counters);
        v.insert("histograms", histograms);
        v.insert("events", self.events.len());
        v
    }

    /// Wall-clock span report for sidecars: `{name: {count, total_ms}}`.
    pub fn spans_value(&self) -> Value {
        let mut v = Value::object();
        for (name, s) in &self.spans {
            let mut span = Value::object();
            span.insert("count", s.count);
            span.insert("total_ms", s.total_ns as f64 / 1e6);
            v.insert(*name, span);
        }
        v
    }

    /// Chrome trace-event JSON (loadable at `ui.perfetto.dev` or
    /// `chrome://tracing`): one lane (tid) per cluster under pid 0 with
    /// jobs and outages as duration slices and scheduler decisions as
    /// instants; driver-level events and per-tick gauge counters under
    /// pid 1.
    pub fn chrome_trace(&self) -> String {
        chrome::chrome_trace(self)
    }
}

/// RAII wall-clock span; folds its elapsed time into the recorder on
/// drop. A disabled handle yields an inert guard that never reads the
/// clock.
pub struct SpanGuard {
    target: Option<(Arc<ObsCore>, &'static str, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((core, name, start)) = self.target.take() {
            let elapsed = start.elapsed().as_nanos();
            let mut r = core.recorder.lock().unwrap();
            let s = r.spans.entry(name).or_default();
            s.count += 1;
            s.total_ns += elapsed;
        }
    }
}

/// Live [`MetricsRegistry`] mirror of the recorder's counters, gauges
/// and histograms, with per-name handle caches so each series registers
/// (and locks the registry) once; every later update is one atomic op.
#[derive(Debug)]
struct MirroredMetrics {
    registry: MetricsRegistry,
    counters: Mutex<BTreeMap<&'static str, metrics::Counter>>,
    gauges: Mutex<BTreeMap<(&'static str, u32), metrics::Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, metrics::Histogram>>,
}

impl MirroredMetrics {
    fn new(registry: MetricsRegistry) -> MirroredMetrics {
        MirroredMetrics {
            registry,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    fn counter(&self, name: &'static str) -> metrics::Counter {
        let mut cache = self.counters.lock().unwrap();
        cache
            .entry(name)
            .or_insert_with(|| {
                self.registry.counter(
                    &metrics::recorder_counter_name(name),
                    &format!("Engine counter {name}"),
                )
            })
            .clone()
    }

    /// `site` is only consulted the first time a `(name, lane)` series
    /// is seen; lanes are named at engine startup, before gauges flow.
    fn gauge(&self, name: &'static str, lane: u32, site: Option<&str>) -> metrics::Gauge {
        let mut cache = self.gauges.lock().unwrap();
        cache
            .entry((name, lane))
            .or_insert_with(|| {
                let lane_s = lane.to_string();
                let mut labels: Vec<(&str, &str)> = vec![("lane", &lane_s)];
                if let Some(site) = site {
                    labels.push(("site", site));
                }
                self.registry.gauge_with(
                    &metrics::recorder_series_name(name),
                    &format!("Engine gauge {name} (last sample)"),
                    &labels,
                )
            })
            .clone()
    }

    fn histogram(&self, name: &'static str) -> metrics::Histogram {
        let mut cache = self.histograms.lock().unwrap();
        cache
            .entry(name)
            .or_insert_with(|| {
                self.registry.histogram(
                    &metrics::recorder_series_name(name),
                    &format!("Engine histogram {name}"),
                )
            })
            .clone()
    }
}

/// Shared state behind an enabled [`Obs`] handle: the recorder, plus an
/// optional live metrics mirror for `/metrics` scraping.
#[derive(Debug)]
struct ObsCore {
    recorder: Mutex<Recorder>,
    metrics: Option<MirroredMetrics>,
}

/// Shared handle to a [`Recorder`], or nothing at all.
///
/// `Obs::default()` is the disabled handle: every recording method is a
/// single `None` check. Cloning shares the underlying recorder, so the
/// driver, each cluster and the campaign executor can all hold the same
/// one. [`Obs::with_metrics`] additionally mirrors counters, gauges and
/// histograms into a [`MetricsRegistry`] a `/metrics` endpoint can
/// scrape mid-run — the mirror is strictly write-through, so recorded
/// state (and thus every deterministic export) is unaffected.
#[derive(Clone, Debug, Default)]
pub struct Obs(Option<Arc<ObsCore>>);

impl Obs {
    /// A handle that records.
    pub fn enabled() -> Obs {
        Obs(Some(Arc::new(ObsCore {
            recorder: Mutex::new(Recorder::default()),
            metrics: None,
        })))
    }

    /// A recording handle that also mirrors updates into `registry`
    /// (names per [`metrics::recorder_counter_name`] /
    /// [`metrics::recorder_series_name`]) for live scraping.
    pub fn with_metrics(registry: MetricsRegistry) -> Obs {
        Obs(Some(Arc::new(ObsCore {
            recorder: Mutex::new(Recorder::default()),
            metrics: Some(MirroredMetrics::new(registry)),
        })))
    }

    /// The no-op handle (same as `Obs::default()`).
    pub fn disabled() -> Obs {
        Obs(None)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The live metrics registry this handle mirrors into, if any.
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        self.0
            .as_ref()
            .and_then(|core| core.metrics.as_ref())
            .map(|m| m.registry.clone())
    }

    /// Add `n` to counter `name`.
    #[inline]
    pub fn count(&self, name: &'static str, n: u64) {
        if let Some(core) = &self.0 {
            *core
                .recorder
                .lock()
                .unwrap()
                .counters
                .entry(name)
                .or_insert(0) += n;
            if let Some(m) = &core.metrics {
                m.counter(name).add(n);
            }
        }
    }

    /// Append a `(t, value)` sample to the `name` series of `lane`.
    #[inline]
    pub fn gauge(&self, name: &'static str, lane: u32, t: SimTime, value: f64) {
        if let Some(core) = &self.0 {
            let site = {
                let mut r = core.recorder.lock().unwrap();
                r.gauges.entry((name, lane)).or_default().push((t, value));
                if core.metrics.is_some() {
                    r.lanes.get(&lane).cloned()
                } else {
                    None
                }
            };
            if let Some(m) = &core.metrics {
                m.gauge(name, lane, site.as_deref()).set(value);
            }
        }
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(core) = &self.0 {
            core.recorder
                .lock()
                .unwrap()
                .histograms
                .entry(name)
                .or_default()
                .observe(value);
            if let Some(m) = &core.metrics {
                m.histogram(name).observe(value);
            }
        }
    }

    /// Emit a structured event. `fields` is borrowed: a disabled handle
    /// never copies it off the stack.
    #[inline]
    pub fn event(
        &self,
        t: SimTime,
        kind: &'static str,
        lane: Option<u32>,
        fields: &[(&'static str, Field)],
    ) {
        if let Some(core) = &self.0 {
            core.recorder.lock().unwrap().events.push(Event {
                t,
                kind,
                lane,
                fields: fields.to_vec(),
            });
        }
    }

    /// Register the display name of a cluster lane.
    pub fn name_lane(&self, lane: u32, name: &str) {
        if let Some(core) = &self.0 {
            core.recorder
                .lock()
                .unwrap()
                .lanes
                .insert(lane, name.to_string());
        }
    }

    /// Open a wall-clock span (sidecar-only timing). The disabled
    /// handle returns an inert guard without touching the clock.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            target: self
                .0
                .as_ref()
                .map(|core| (Arc::clone(core), name, Instant::now())),
        }
    }

    /// Run `f` over the recorder, if enabled.
    pub fn with<R>(&self, f: impl FnOnce(&Recorder) -> R) -> Option<R> {
        self.0
            .as_ref()
            .map(|core| f(&core.recorder.lock().unwrap()))
    }

    /// Clone the recorded state out of the handle, if enabled.
    pub fn snapshot(&self) -> Option<Recorder> {
        self.with(Clone::clone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::default();
        assert!(!obs.is_enabled());
        obs.count("x", 3);
        obs.gauge("g", 0, SimTime(1), 1.0);
        obs.observe("h", 7);
        obs.event(SimTime(2), "e", None, &[("a", Field::U64(1))]);
        drop(obs.span("s"));
        assert!(obs.snapshot().is_none());
        assert!(obs.with(|_| ()).is_none());
    }

    #[test]
    fn counters_gauges_and_events_accumulate() {
        let obs = Obs::enabled();
        let sibling = obs.clone(); // shares the recorder
        obs.count("probes", 2);
        sibling.count("probes", 3);
        obs.gauge("queue", 1, SimTime(10), 4.0);
        obs.gauge("queue", 1, SimTime(20), 2.0);
        obs.event(
            SimTime(5),
            "job.run",
            Some(1),
            &[("id", Field::U64(9)), ("start", Field::U64(5))],
        );
        let r = obs.snapshot().unwrap();
        assert_eq!(r.counter("probes"), 5);
        assert_eq!(r.gauge_series("queue", 1).len(), 2);
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.events()[0].field_u64("id"), Some(9));
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1034);
        let buckets: Vec<_> = h.buckets().collect();
        // 0 → bucket 0; 1 → [1,2); 2,3 → [2,4); 4 → [4,8); 1024 → [1024,2048).
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (4, 1), (1024, 1)]);
    }

    #[test]
    fn events_jsonl_is_canonical_and_ordered() {
        let obs = Obs::enabled();
        obs.event(SimTime(1), "a", None, &[("n", Field::I64(-2))]);
        obs.event(SimTime(2), "b", Some(0), &[("r", Field::F64(0.5))]);
        let jsonl = obs.with(|r| r.events_jsonl()).unwrap();
        assert_eq!(
            jsonl,
            "{\"kind\":\"a\",\"n\":-2,\"t\":1}\n{\"kind\":\"b\",\"lane\":0,\"r\":0.5,\"t\":2}\n"
        );
    }

    #[test]
    fn identical_recordings_export_identical_bytes() {
        let record = |seed: u64| {
            let obs = Obs::enabled();
            obs.name_lane(0, "site-a");
            for i in 0..50u64 {
                let v = (seed.wrapping_mul(i)) % 97;
                obs.count("ops", 1);
                obs.observe("sizes", v);
                obs.gauge("load", 0, SimTime(i), v as f64);
                obs.event(
                    SimTime(i),
                    "op",
                    Some(0),
                    &[("v", Field::U64(v)), ("i", Field::U64(i))],
                );
            }
            let r = obs.snapshot().unwrap();
            (r.events_jsonl(), r.summary().encode(), r.chrome_trace())
        };
        assert_eq!(record(7), record(7));
        assert_ne!(record(7).0, record(11).0);
    }

    #[test]
    fn with_metrics_mirrors_live_without_perturbing_the_recorder() {
        let reg = MetricsRegistry::new();
        let obs = Obs::with_metrics(reg.clone());
        assert!(obs.metrics().is_some());
        obs.name_lane(0, "site-a");
        obs.count("ops", 2);
        obs.observe("sizes", 5);
        obs.gauge("load", 0, SimTime(1), 3.0);
        let page = reg.render();
        assert!(page.contains("grid_ops_total 2"), "{page}");
        assert!(
            page.contains("grid_load{lane=\"0\",site=\"site-a\"} 3"),
            "{page}"
        );
        assert!(page.contains("grid_sizes_count 1"), "{page}");
        // The mirror is write-through: recorded state matches a plain
        // enabled handle byte for byte.
        let plain = Obs::enabled();
        assert!(plain.metrics().is_none());
        plain.name_lane(0, "site-a");
        plain.count("ops", 2);
        plain.observe("sizes", 5);
        plain.gauge("load", 0, SimTime(1), 3.0);
        let (a, b) = (obs.snapshot().unwrap(), plain.snapshot().unwrap());
        assert_eq!(a.summary().encode(), b.summary().encode());
        assert_eq!(a.events_jsonl(), b.events_jsonl());
        assert_eq!(a.chrome_trace(), b.chrome_trace());
    }

    #[test]
    fn spans_accumulate_wall_time_but_stay_out_of_exports() {
        let obs = Obs::enabled();
        {
            let _g = obs.span("phase");
        }
        {
            let _g = obs.span("phase");
        }
        let r = obs.snapshot().unwrap();
        assert_eq!(r.spans()["phase"].count, 2);
        // Wall time never reaches the deterministic exports.
        assert!(!r.summary().encode().contains("phase"));
        assert!(!r.events_jsonl().contains("phase"));
        assert!(r.spans_value().encode().contains("total_ms"));
    }
}
