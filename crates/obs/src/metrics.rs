//! Lock-cheap metrics registry with Prometheus text exposition.
//!
//! The [`Recorder`] is a *post-hoc* artifact: it
//! collects one run's telemetry and exports it when the run is over. A
//! live fleet needs the opposite — series that can be scraped *while*
//! the campaign drains. [`MetricsRegistry`] is that layer: named
//! counters, gauges and histograms registered once (one mutex
//! acquisition) and updated through `Arc`-shared atomic handles, so the
//! hot path after registration is a single `fetch_add` — no lock, no
//! allocation.
//!
//! Rendering follows the Prometheus text exposition format (version
//! 0.0.4): `# HELP` / `# TYPE` headers, escaped label values, and —
//! for histograms — cumulative `_bucket{le="…"}` lines ending in the
//! mandatory `+Inf` bucket plus `_sum` / `_count`. Histograms reuse the
//! recorder's power-of-two bucket scheme (value `v` lands in bucket
//! `⌊log2 v⌋ + 1`, zero in bucket 0), so `le` bounds are `2^b − 1`:
//! exact inclusive upper bounds for integer observations.
//!
//! [`MetricsRegistry::from_recorder`] bridges the two worlds: a
//! finished (or snapshotted) recorder renders as one deterministic
//! exposition page — the golden-snapshot tests pin its bytes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::Recorder;

/// Buckets 0..=64: bucket 0 is exactly zero, bucket `b` covers
/// `[2^(b−1), 2^b)` — the recorder's scheme, one `leading_zeros` per
/// observation.
const BUCKETS: usize = 65;

/// A monotonically increasing series. Updates are lock-free.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A set-to-current-value series (stored as `f64` bits). Updates are
/// lock-free; concurrent setters race benignly (last write wins).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A power-of-two-bucketed distribution series. Updates are lock-free.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let bucket = if v == 0 { 0 } else { 64 - v.leading_zeros() };
        self.0.buckets[bucket as usize].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug)]
struct Family {
    kind: Kind,
    help: String,
    /// Series keyed by their rendered (sorted, escaped) label set —
    /// `""` for the unlabelled series.
    series: BTreeMap<String, Series>,
}

/// A shared registry of named metric families.
///
/// Cloning shares the registry. Registration (`counter` / `gauge` /
/// `histogram` and their `_with` label variants) takes the registry
/// lock once and returns an atomic handle; re-registering the same
/// `(name, labels)` returns a handle to the *same* underlying series,
/// so call sites never need to coordinate.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: Arc<Mutex<BTreeMap<String, Family>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register (or look up) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a counter with label pairs.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, labels, Kind::Counter) {
            Series::Counter(c) => Counter(c),
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Register (or look up) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a gauge with label pairs.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, labels, Kind::Gauge) {
            Series::Gauge(g) => Gauge(g),
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Register (or look up) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Register (or look up) a histogram with label pairs.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, help, labels, Kind::Histogram) {
            Series::Histogram(h) => Histogram(h),
            _ => unreachable!("kind checked in series()"),
        }
    }

    fn series(&self, name: &str, help: &str, labels: &[(&str, &str)], kind: Kind) -> Series {
        let name = sanitize_metric_name(name);
        let key = render_labels(labels);
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name.clone()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            kind,
            "metric {name:?} registered as {} and {}",
            family.kind.as_str(),
            kind.as_str()
        );
        let series = family.series.entry(key).or_insert_with(|| match kind {
            Kind::Counter => Series::Counter(Arc::new(AtomicU64::new(0))),
            Kind::Gauge => Series::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
            Kind::Histogram => Series::Histogram(Arc::new(HistogramCore::default())),
        });
        match series {
            Series::Counter(c) => Series::Counter(Arc::clone(c)),
            Series::Gauge(g) => Series::Gauge(Arc::clone(g)),
            Series::Histogram(h) => Series::Histogram(Arc::clone(h)),
        }
    }

    /// Render the whole registry in Prometheus text exposition format.
    ///
    /// Families render sorted by name, series sorted by label set, so
    /// the page is deterministic given the same registry state. A
    /// histogram with zero observations is omitted (the series has not
    /// produced a sample yet); counters and gauges render even at zero
    /// — registering one *is* the statement that the series exists.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().unwrap();
        for (name, family) in families.iter() {
            // Zero-sample omission: suppress a family whose every series
            // is an unobserved histogram.
            if family.kind == Kind::Histogram
                && family.series.values().all(|s| match s {
                    Series::Histogram(h) => h.count.load(Ordering::Relaxed) == 0,
                    _ => false,
                })
            {
                continue;
            }
            if !family.help.is_empty() {
                out.push_str("# HELP ");
                out.push_str(name);
                out.push(' ');
                out.push_str(&escape_help(&family.help));
                out.push('\n');
            }
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        render_sample(&mut out, name, labels, c.load(Ordering::Relaxed));
                    }
                    Series::Gauge(g) => {
                        let v = f64::from_bits(g.load(Ordering::Relaxed));
                        out.push_str(name);
                        out.push_str(labels);
                        out.push(' ');
                        out.push_str(&fmt_f64(v));
                        out.push('\n');
                    }
                    Series::Histogram(h) => {
                        let count = h.count.load(Ordering::Relaxed);
                        if count == 0 {
                            continue;
                        }
                        let mut cumulative = 0u64;
                        for (b, bucket) in h.buckets.iter().enumerate() {
                            let n = bucket.load(Ordering::Relaxed);
                            if n == 0 {
                                continue;
                            }
                            cumulative += n;
                            let le = if b == 0 {
                                "0".to_string()
                            } else {
                                // Bucket b covers [2^(b−1), 2^b): the
                                // inclusive integer upper bound is 2^b − 1
                                // (u64::MAX for the top bucket).
                                if b == 64 {
                                    u64::MAX.to_string()
                                } else {
                                    ((1u64 << b) - 1).to_string()
                                }
                            };
                            render_bucket(&mut out, name, labels, &le, cumulative);
                        }
                        render_bucket(&mut out, name, labels, "+Inf", count);
                        render_sample(
                            &mut out,
                            &format!("{name}_sum"),
                            labels,
                            h.sum.load(Ordering::Relaxed),
                        );
                        render_sample(&mut out, &format!("{name}_count"), labels, count);
                    }
                }
            }
        }
        out
    }

    /// Build a registry mirroring a [`Recorder`]'s counters, histograms
    /// and gauges under the same names [`crate::Obs::with_metrics`]
    /// mirrors live updates to — so a post-hoc render and a live scrape
    /// of the same run expose identical series.
    ///
    /// Counters become `grid_<name>_total`; histograms `grid_<name>`;
    /// each gauge series' *last* sample becomes `grid_<name>{lane="N"}`
    /// (with a `site` label when the lane is named). Deterministic:
    /// identical recorders render identical pages.
    pub fn from_recorder(rec: &Recorder) -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        for (name, value) in rec.counters() {
            reg.counter(
                &recorder_counter_name(name),
                &format!("Engine counter {name}"),
            )
            .add(value);
        }
        for (name, hist) in &rec.histograms {
            let h = reg.histogram(
                &recorder_series_name(name),
                &format!("Engine histogram {name}"),
            );
            for (floor, n) in hist.buckets() {
                // Re-observing the bucket floor lands in the same bucket
                // the original value did; the recorder's per-bucket sums
                // are not kept, so the exposition sum is the floor sum —
                // a documented lower bound.
                for _ in 0..n {
                    h.observe(floor);
                }
            }
        }
        for (&(name, lane), series) in &rec.gauges {
            let Some(&(_, last)) = series.last() else {
                continue;
            };
            let lane_s = lane.to_string();
            let mut labels: Vec<(&str, &str)> = vec![("lane", &lane_s)];
            let site = rec.lanes().get(&lane).cloned();
            if let Some(site) = &site {
                labels.push(("site", site));
            }
            reg.gauge_with(
                &recorder_series_name(name),
                &format!("Engine gauge {name} (last sample)"),
                &labels,
            )
            .set(last);
        }
        reg
    }
}

fn render_sample(out: &mut String, name: &str, labels: &str, value: u64) {
    out.push_str(name);
    out.push_str(labels);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

fn render_bucket(out: &mut String, name: &str, labels: &str, le: &str, cumulative: u64) {
    out.push_str(name);
    out.push_str("_bucket");
    // Merge `le` into the existing label set: `{a="b"}` → `{a="b",le=…}`.
    if let Some(stripped) = labels.strip_suffix('}') {
        out.push_str(stripped);
        out.push(',');
    } else {
        out.push('{');
    }
    out.push_str("le=\"");
    out.push_str(le);
    out.push_str("\"} ");
    out.push_str(&cumulative.to_string());
    out.push('\n');
}

/// The exposition name a recorder counter mirrors to.
pub fn recorder_counter_name(name: &str) -> String {
    format!("grid_{}_total", sanitize_metric_name(name))
}

/// The exposition name a recorder gauge or histogram mirrors to.
pub fn recorder_series_name(name: &str) -> String {
    format!("grid_{}", sanitize_metric_name(name))
}

/// Reduce a name to the Prometheus metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`, and
/// a leading digit is prefixed with `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphabetic() || c == '_' || c == ':' || (c.is_ascii_digit() && i > 0) {
            out.push(c);
        } else if c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Render a label set as `{k="v",…}` with keys sorted and values
/// escaped; empty set renders as the empty string.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sanitize_metric_name(k));
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// `# HELP` text escaping: backslash and newline (quotes are legal).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Stable float formatting: integral values render without a fraction,
/// everything else through Rust's shortest-roundtrip `Display`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, Obs};
    use grid_des::SimTime;

    #[test]
    fn counters_and_gauges_render_with_help_and_type() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("jobs_total", "Jobs seen");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("queue_depth", "Current queue depth");
        g.set(7.0);
        assert_eq!(g.get(), 7.0);
        let page = reg.render();
        assert_eq!(
            page,
            "# HELP jobs_total Jobs seen\n\
             # TYPE jobs_total counter\n\
             jobs_total 5\n\
             # HELP queue_depth Current queue depth\n\
             # TYPE queue_depth gauge\n\
             queue_depth 7\n"
        );
    }

    #[test]
    fn reregistration_shares_the_series() {
        let reg = MetricsRegistry::new();
        reg.counter("hits", "h").inc();
        reg.counter("hits", "h").inc();
        assert_eq!(reg.counter("hits", "h").get(), 2);
        // Labelled variants are distinct series of one family.
        reg.counter_with("hits", "h", &[("site", "a")]).add(9);
        assert_eq!(reg.counter("hits", "h").get(), 2);
        assert_eq!(reg.counter_with("hits", "h", &[("site", "a")]).get(), 9);
    }

    #[test]
    #[should_panic(expected = "registered as counter and gauge")]
    fn kind_conflicts_panic() {
        let reg = MetricsRegistry::new();
        reg.counter("x", "");
        reg.gauge("x", "");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter_with("c", "", &[("path", "a\\b\"c\nd")]).inc();
        let page = reg.render();
        assert!(
            page.contains("c{path=\"a\\\\b\\\"c\\nd\"} 1"),
            "backslash, quote and newline must be escaped: {page}"
        );
        // Round-trippable: no raw newline survives inside the sample line.
        assert_eq!(page.lines().count(), 2, "{page}");
    }

    #[test]
    fn labels_render_sorted_regardless_of_registration_order() {
        let reg = MetricsRegistry::new();
        reg.counter_with("c", "", &[("z", "1"), ("a", "2")]).inc();
        assert!(reg.render().contains("c{a=\"2\",z=\"1\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ms", "Latency");
        for v in [0, 1, 2, 3, 4, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1034);
        let page = reg.render();
        // 0→bucket 0; 1→[1,2); 2,3→[2,4); 4→[4,8); 1024→[1024,2048).
        // Cumulative counts at the inclusive integer bounds:
        let expected = "# HELP lat_ms Latency\n\
             # TYPE lat_ms histogram\n\
             lat_ms_bucket{le=\"0\"} 1\n\
             lat_ms_bucket{le=\"1\"} 2\n\
             lat_ms_bucket{le=\"3\"} 4\n\
             lat_ms_bucket{le=\"7\"} 5\n\
             lat_ms_bucket{le=\"2047\"} 6\n\
             lat_ms_bucket{le=\"+Inf\"} 6\n\
             lat_ms_sum 1034\n\
             lat_ms_count 6\n";
        assert_eq!(page, expected);
    }

    #[test]
    fn labelled_histogram_buckets_merge_le_into_the_label_set() {
        let reg = MetricsRegistry::new();
        reg.histogram_with("h", "", &[("site", "a")]).observe(3);
        let page = reg.render();
        assert!(page.contains("h_bucket{site=\"a\",le=\"3\"} 1"), "{page}");
        assert!(
            page.contains("h_bucket{site=\"a\",le=\"+Inf\"} 1"),
            "{page}"
        );
        assert!(page.contains("h_sum{site=\"a\"} 3"), "{page}");
        assert!(page.contains("h_count{site=\"a\"} 1"), "{page}");
    }

    #[test]
    fn zero_sample_histograms_are_omitted() {
        let reg = MetricsRegistry::new();
        reg.histogram("silent", "never observed");
        reg.counter("loud", "registered only").add(0);
        let page = reg.render();
        assert!(
            !page.contains("silent"),
            "unobserved histogram must be omitted: {page}"
        );
        // Counters render at zero: registration declares the series.
        assert!(page.contains("loud 0"), "{page}");
    }

    #[test]
    fn sanitize_maps_to_the_metric_alphabet() {
        assert_eq!(
            sanitize_metric_name("sched.first_fit_probes"),
            "sched_first_fit_probes"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn golden_exposition_snapshot_from_a_deterministic_recorder() {
        let obs = Obs::enabled();
        obs.name_lane(0, "site-a");
        obs.count("sched.probes", 7);
        obs.count("jobs.run", 3);
        obs.observe("queue.wait_s", 0);
        obs.observe("queue.wait_s", 5);
        obs.observe("queue.wait_s", 300);
        obs.gauge("queue.depth", 0, SimTime(10), 4.0);
        obs.gauge("queue.depth", 0, SimTime(20), 2.0);
        obs.gauge("queue.depth", 3, SimTime(20), 9.5);
        obs.event(SimTime(1), "noop", None, &[("x", Field::U64(1))]);
        let rec = obs.snapshot().unwrap();
        let page = MetricsRegistry::from_recorder(&rec).render();
        let golden = "\
# HELP grid_jobs_run_total Engine counter jobs.run
# TYPE grid_jobs_run_total counter
grid_jobs_run_total 3
# HELP grid_queue_depth Engine gauge queue.depth (last sample)
# TYPE grid_queue_depth gauge
grid_queue_depth{lane=\"0\",site=\"site-a\"} 2
grid_queue_depth{lane=\"3\"} 9.5
# HELP grid_queue_wait_s Engine histogram queue.wait_s
# TYPE grid_queue_wait_s histogram
grid_queue_wait_s_bucket{le=\"0\"} 1
grid_queue_wait_s_bucket{le=\"7\"} 2
grid_queue_wait_s_bucket{le=\"511\"} 3
grid_queue_wait_s_bucket{le=\"+Inf\"} 3
grid_queue_wait_s_sum 260
grid_queue_wait_s_count 3
# HELP grid_sched_probes_total Engine counter sched.probes
# TYPE grid_sched_probes_total counter
grid_sched_probes_total 7
";
        assert_eq!(page, golden);
        // Determinism: a second identical recording renders identical bytes.
        let again = MetricsRegistry::from_recorder(&rec).render();
        assert_eq!(page, again);
    }

    #[test]
    fn concurrent_updates_land() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n", "");
        let h = reg.histogram("d", "");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i % 16);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }
}
