//! Live campaign progress: one status line the executor re-renders as
//! units finish.
//!
//! The ETA is not `remaining / rate`: computed cells dominate the wall
//! time while cache hits are effectively free, so the view keeps the
//! per-computed-run wall times, estimates the still-to-compute count
//! from the computed:cached mix seen so far, and reports the 95%
//! confidence half-width of the mean wall time as an ETA error bar —
//! the same trajectory the acceptance criteria track.

/// Student-t 97.5% quantiles for small samples (ν = 1..30), then the
/// normal approximation.
fn t_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        n if n <= TABLE.len() => TABLE[n - 1],
        _ => 1.96,
    }
}

/// Snapshot of a running campaign, renderable as one status line.
#[derive(Debug, Clone, Default)]
pub struct ProgressView {
    /// Cells in the campaign (this shard).
    pub total: usize,
    /// Cells finished from cache.
    pub cached: usize,
    /// Cells computed (wall times recorded below).
    pub computed: usize,
    /// Cells that panicked.
    pub failed: usize,
    /// Cells skipped by a convergence rule (fleet runners / report).
    pub skipped: usize,
    /// Cells currently claimed by a lease (fleet view; 0 hides the
    /// segment).
    pub claimed: usize,
    /// Live runners behind the active leases (fleet status view; 0
    /// hides the segment).
    pub runners: usize,
    /// Wall time spent so far, milliseconds.
    pub elapsed_ms: u64,
    /// Fleet-reported throughput (sum of runner heartbeat rates). When
    /// set it overrides the elapsed-time rate estimate and drives a
    /// rate-based ETA — heartbeats know the *current* rate, while
    /// `done / elapsed` averages over warm-up and cache replay.
    pub rate_per_s: Option<f64>,
    /// Per-runner detail rows sourced from heartbeats (status view;
    /// empty for single-process runs).
    pub runner_rows: Vec<RunnerRow>,
    wall_ms: Vec<u64>,
}

/// One runner's heartbeat, rendered as an indented detail line under
/// the fleet status line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunnerRow {
    /// Runner id (`--runner-id`, default `host-pid`).
    pub id: String,
    /// Units this runner computed.
    pub computed: usize,
    /// Units this runner finished from cache.
    pub cached: usize,
    /// Units this runner failed.
    pub failed: usize,
    /// Units currently claimed by this runner.
    pub in_flight: usize,
    /// This runner's recent throughput.
    pub runs_per_s: f64,
    /// Cache key of the unit being worked on, if any.
    pub current: Option<String>,
    /// Seconds since the last heartbeat was written.
    pub age_s: u64,
}

impl RunnerRow {
    /// The detail line, without trailing newline.
    pub fn render(&self) -> String {
        let mut line = format!(
            "  {}: {} computed, {} cached, {} failed",
            self.id, self.computed, self.cached, self.failed
        );
        if self.in_flight > 0 {
            line.push_str(&format!(", {} in flight", self.in_flight));
        }
        line.push_str(&format!(", {:.2} runs/s", self.runs_per_s));
        if let Some(current) = &self.current {
            line.push_str(&format!(", on {current}"));
        }
        line.push_str(&format!(" (beat {}s ago)", self.age_s));
        line
    }
}

impl ProgressView {
    /// A view over a campaign of `total` cells.
    pub fn new(total: usize) -> ProgressView {
        ProgressView {
            total,
            ..ProgressView::default()
        }
    }

    /// Record a computed cell and its wall time.
    pub fn on_computed(&mut self, wall_ms: u64) {
        self.computed += 1;
        self.wall_ms.push(wall_ms);
    }

    /// Record a cache hit.
    pub fn on_cached(&mut self) {
        self.cached += 1;
    }

    /// Record a failed cell.
    pub fn on_failed(&mut self) {
        self.failed += 1;
    }

    /// Record a convergence-skipped cell.
    pub fn on_skipped(&mut self) {
        self.skipped += 1;
    }

    /// Cells finished, however they finished.
    pub fn done(&self) -> usize {
        self.computed + self.cached + self.failed + self.skipped
    }

    /// Mean and 95% CI half-width of the per-computed-run wall time, in
    /// milliseconds (`None` until something was computed).
    pub fn wall_ms_ci(&self) -> Option<(f64, f64)> {
        let n = self.wall_ms.len();
        if n == 0 {
            return None;
        }
        let mean = self.wall_ms.iter().sum::<u64>() as f64 / n as f64;
        if n == 1 {
            return Some((mean, f64::INFINITY));
        }
        let var = self
            .wall_ms
            .iter()
            .map(|&w| (w as f64 - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        Some((mean, t_975(n - 1) * (var / n as f64).sqrt()))
    }

    /// `(eta, half_width)` in seconds: expected still-to-compute count
    /// times the mean computed wall time, with the CI half-width scaled
    /// the same way. `None` until the first computed cell.
    pub fn eta_secs(&self) -> Option<(f64, f64)> {
        let (mean, half) = self.wall_ms_ci()?;
        let done = self.done();
        let remaining = (self.total - done.min(self.total)) as f64;
        // Fraction of finished cells that needed computing predicts how
        // many of the remaining will.
        let compute_frac = if done == 0 {
            1.0
        } else {
            self.computed as f64 / done as f64
        };
        let to_compute = remaining * compute_frac;
        Some((to_compute * mean / 1e3, to_compute * half / 1e3))
    }

    /// The status line, without trailing newline.
    pub fn render(&self) -> String {
        let done = self.done();
        let width = self.total.to_string().len();
        let mut line = format!(
            "[{done:>width$}/{}] {} computed, {} cached, {} failed",
            self.total, self.computed, self.cached, self.failed,
        );
        if self.skipped > 0 {
            line.push_str(&format!(", {} skipped", self.skipped));
        }
        if self.runners > 0 {
            line.push_str(&format!(" | {} runner(s)", self.runners));
        }
        if self.claimed > 0 {
            line.push_str(&format!(" | {} claimed", self.claimed));
        }
        if let Some(rate) = self.rate_per_s {
            // Heartbeat-sourced throughput: the fleet's current rate,
            // with a rate-based ETA (no CI — heartbeats carry a point
            // estimate, not a sample distribution).
            line.push_str(&format!(" | {rate:.2} runs/s"));
            if rate > 0.0 && done < self.total {
                let eta = (self.total - done) as f64 / rate;
                line.push_str(&format!(" | ETA {eta:.0}s"));
            }
            return line;
        }
        if self.elapsed_ms > 0 && done > 0 {
            line.push_str(&format!(
                " | {:.1} runs/s",
                done as f64 / (self.elapsed_ms as f64 / 1e3)
            ));
        }
        match self.eta_secs() {
            Some((eta, half)) if done < self.total => {
                if half.is_finite() {
                    line.push_str(&format!(" | ETA {eta:.0}s ±{half:.0}s"));
                } else {
                    line.push_str(&format!(" | ETA {eta:.0}s"));
                }
            }
            _ => {}
        }
        line
    }

    /// Render the per-runner detail rows, one line per runner.
    pub fn render_runners(&self) -> Vec<String> {
        self.runner_rows.iter().map(RunnerRow::render).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_render() {
        let mut p = ProgressView::new(10);
        assert_eq!(p.done(), 0);
        assert!(p.eta_secs().is_none());
        p.on_cached();
        p.on_computed(100);
        p.on_computed(120);
        p.on_failed();
        p.elapsed_ms = 2_000;
        assert_eq!(p.done(), 4);
        let line = p.render();
        assert!(
            line.starts_with("[ 4/10] 2 computed, 1 cached, 1 failed"),
            "{line}"
        );
        assert!(line.contains("runs/s"), "{line}");
        assert!(line.contains("ETA"), "{line}");
    }

    #[test]
    fn fleet_segments_render_only_when_present() {
        let mut p = ProgressView::new(10);
        p.on_computed(100);
        p.on_cached();
        assert!(
            !p.render().contains("skipped")
                && !p.render().contains("claimed")
                && !p.render().contains("runner"),
            "zero fleet counters must not change the classic line: {}",
            p.render()
        );
        p.on_skipped();
        p.on_skipped();
        p.claimed = 3;
        p.runners = 2;
        let line = p.render();
        assert!(
            line.starts_with("[ 4/10] 1 computed, 1 cached, 0 failed, 2 skipped"),
            "{line}"
        );
        assert!(line.contains("2 runner(s)"), "{line}");
        assert!(line.contains("3 claimed"), "{line}");
        assert_eq!(p.done(), 4, "skipped cells count as done");
    }

    #[test]
    fn heartbeat_rate_overrides_elapsed_estimate_and_eta() {
        let mut p = ProgressView::new(10);
        p.on_computed(100);
        p.on_computed(100);
        p.elapsed_ms = 2_000;
        p.rate_per_s = Some(0.5);
        let line = p.render();
        assert!(line.contains("| 0.50 runs/s"), "{line}");
        // Rate-based ETA: 8 remaining / 0.5 per s = 16s, no ± bar.
        assert!(line.contains("| ETA 16s"), "{line}");
        assert!(!line.contains('±'), "{line}");
        // Zero rate renders the rate but suppresses the ETA.
        p.rate_per_s = Some(0.0);
        let line = p.render();
        assert!(line.contains("| 0.00 runs/s"), "{line}");
        assert!(!line.contains("ETA"), "{line}");
    }

    #[test]
    fn runner_rows_render_as_indented_detail_lines() {
        let mut p = ProgressView::new(10);
        p.runner_rows.push(RunnerRow {
            id: "ci-a".into(),
            computed: 5,
            cached: 1,
            failed: 0,
            in_flight: 1,
            runs_per_s: 0.42,
            current: Some("jun/homog/none".into()),
            age_s: 1,
        });
        p.runner_rows.push(RunnerRow {
            id: "ci-b".into(),
            computed: 2,
            cached: 0,
            failed: 1,
            in_flight: 0,
            runs_per_s: 0.2,
            current: None,
            age_s: 3,
        });
        let rows = p.render_runners();
        assert_eq!(
            rows[0],
            "  ci-a: 5 computed, 1 cached, 0 failed, 1 in flight, 0.42 runs/s, on jun/homog/none (beat 1s ago)"
        );
        assert_eq!(
            rows[1],
            "  ci-b: 2 computed, 0 cached, 1 failed, 0.20 runs/s (beat 3s ago)"
        );
    }

    #[test]
    fn ci_half_width_narrows_with_samples() {
        let mut p = ProgressView::new(100);
        p.on_computed(100);
        let (_, wide) = p.wall_ms_ci().unwrap();
        assert!(wide.is_infinite(), "one sample has no finite CI");
        for _ in 0..20 {
            p.on_computed(100);
            p.on_computed(110);
        }
        let (mean, half) = p.wall_ms_ci().unwrap();
        assert!((mean - 105.0).abs() < 1.0);
        assert!(half < 5.0, "41 samples tighten the CI, got ±{half}");
    }

    #[test]
    fn eta_scales_by_compute_fraction() {
        let mut p = ProgressView::new(100);
        // Half the finished cells were cache hits → only half the
        // remaining 96 should count toward the ETA.
        p.on_computed(1_000);
        p.on_computed(1_000);
        p.on_cached();
        p.on_cached();
        let (eta, _) = p.eta_secs().unwrap();
        assert!((eta - 48.0).abs() < 1e-9, "expected 48s, got {eta}");
    }

    #[test]
    fn finished_campaign_renders_without_eta() {
        let mut p = ProgressView::new(1);
        p.on_computed(50);
        assert!(!p.render().contains("ETA"));
    }

    #[test]
    fn t_table_matches_aggregate_convention() {
        assert!(t_975(1) > 12.0);
        assert!((t_975(30) - 2.042).abs() < 1e-9);
        assert!((t_975(200) - 1.96).abs() < 1e-9);
    }
}
