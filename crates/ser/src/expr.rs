//! Policy expressions: `name(key=value, …)`.
//!
//! Every policy axis of the workspace (batch schedulers, mappings,
//! reallocation strategies, ordering heuristics) is selected from specs
//! and CLIs by string. This module upgrades those strings from bare
//! names to *expressions* carrying typed named arguments:
//!
//! ```text
//! load-threshold                      # bare name (all defaults)
//! load-threshold()                    # same thing
//! load-threshold(factor=2)            # explicit default — still the same
//! load-threshold(factor=1.5)          # a configured variant
//! EASY(protected=4)                   # integer argument
//! ```
//!
//! The registries stay the source of truth: each entry declares the
//! parameters it accepts as a list of [`ParamSpec`]s (key, type,
//! default, one-line doc). [`BoundArgs::bind`] validates a parsed
//! [`PolicyExpr`] against that list — unknown keys and type mismatches
//! produce errors that spell out the accepted parameters — and
//! [`BoundArgs::canonical`] renders the *canonical* spelling: arguments
//! equal to their declared default are dropped and the rest are printed
//! in declaration order, so `load-threshold`, `load-threshold()` and
//! `load-threshold(factor=2)` all canonicalise (and therefore display,
//! compare and hash) identically. Canonicalisation is what lets
//! expression handles flow into cache descriptors and table keys without
//! perturbing the byte-identity of default-parameter runs.

use std::fmt;

/// A parsed argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Integer literal (`protected=4`).
    Int(i64),
    /// Float literal (`factor=1.5`); integer literals coerce to floats
    /// where a float is expected.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// Quoted (`"a b"`) or bare (`abc`) string.
    Str(String),
}

impl ArgValue {
    /// Human name of the value's kind (for error messages).
    pub fn kind_name(&self) -> &'static str {
        match self {
            ArgValue::Int(_) => "integer",
            ArgValue::Float(_) => "float",
            ArgValue::Bool(_) => "boolean",
            ArgValue::Str(_) => "string",
        }
    }

    /// Canonical rendering used inside canonical expressions. Floats use
    /// the shortest round-trip form (`3` for `3.0`, `1.5` for `1.5`), so
    /// `factor=3` and `factor=3.0` canonicalise identically.
    fn canonical(&self) -> String {
        match self {
            ArgValue::Int(i) => i.to_string(),
            ArgValue::Float(f) => f.to_string(),
            ArgValue::Bool(b) => b.to_string(),
            ArgValue::Str(s) => {
                if !s.is_empty()
                    && s.chars()
                        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
                {
                    s.clone()
                } else {
                    format!("{s:?}")
                }
            }
        }
    }
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// The type a declared parameter accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Signed integer.
    Int,
    /// Float (integer literals coerce).
    Float,
    /// Boolean.
    Bool,
    /// String.
    Str,
}

impl fmt::Display for ParamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ParamKind::Int => "int",
            ParamKind::Float => "float",
            ParamKind::Bool => "bool",
            ParamKind::Str => "string",
        })
    }
}

/// One parameter a registry entry declares.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    /// Argument key as written in expressions.
    pub key: &'static str,
    /// Accepted type.
    pub kind: ParamKind,
    /// Declared default. `None` means the default is computed at runtime
    /// (e.g. "inherit from the run configuration"); such an argument is
    /// never dropped from the canonical form when provided.
    pub default: Option<ArgValue>,
    /// One-line description shown in error messages.
    pub doc: &'static str,
}

impl ParamSpec {
    /// A float parameter.
    pub fn float(key: &'static str, default: Option<f64>, doc: &'static str) -> ParamSpec {
        ParamSpec {
            key,
            kind: ParamKind::Float,
            default: default.map(ArgValue::Float),
            doc,
        }
    }

    /// An integer parameter.
    pub fn int(key: &'static str, default: Option<i64>, doc: &'static str) -> ParamSpec {
        ParamSpec {
            key,
            kind: ParamKind::Int,
            default: default.map(ArgValue::Int),
            doc,
        }
    }

    /// A boolean parameter.
    pub fn bool(key: &'static str, default: Option<bool>, doc: &'static str) -> ParamSpec {
        ParamSpec {
            key,
            kind: ParamKind::Bool,
            default: default.map(ArgValue::Bool),
            doc,
        }
    }

    /// A string parameter.
    pub fn str(key: &'static str, default: Option<&str>, doc: &'static str) -> ParamSpec {
        ParamSpec {
            key,
            kind: ParamKind::Str,
            default: default.map(|s| ArgValue::Str(s.to_string())),
            doc,
        }
    }

    /// `key: kind = default — doc` (error-message helper).
    fn describe(&self) -> String {
        let default = match &self.default {
            Some(v) => format!(" = {v}"),
            None => String::new(),
        };
        format!("{}: {}{default} ({})", self.key, self.kind, self.doc)
    }
}

/// Render an entry's accepted-parameter list for error messages.
pub fn describe_params(entry: &str, specs: &[ParamSpec]) -> String {
    if specs.is_empty() {
        format!("`{entry}` takes no parameters")
    } else {
        format!(
            "`{entry}` accepts: {}",
            specs
                .iter()
                .map(ParamSpec::describe)
                .collect::<Vec<_>>()
                .join("; ")
        )
    }
}

/// A parsed (but not yet validated) policy expression.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyExpr {
    /// The entry name as written (case preserved; registries resolve it
    /// case-insensitively).
    pub name: String,
    /// Arguments in source order, keys unique.
    pub args: Vec<(String, ArgValue)>,
}

impl PolicyExpr {
    /// Parse `name` or `name(key=value, …)`.
    pub fn parse(input: &str) -> Result<PolicyExpr, String> {
        let s = input.trim();
        if s.is_empty() {
            return Err("empty policy expression".into());
        }
        let (name, rest) = match s.find('(') {
            None => (s, None),
            Some(i) => {
                let Some(inner) = s[i + 1..].strip_suffix(')') else {
                    return Err(format!("`{s}`: missing closing `)`"));
                };
                (s[..i].trim_end(), Some(inner))
            }
        };
        if name.is_empty() {
            return Err(format!("`{s}`: missing policy name before `(`"));
        }
        if let Some(bad) = name
            .chars()
            .find(|c| ")(,=\"".contains(*c) || c.is_whitespace())
        {
            return Err(format!("`{s}`: invalid character `{bad}` in policy name"));
        }
        let mut args: Vec<(String, ArgValue)> = Vec::new();
        if let Some(inner) = rest {
            for (key, value) in parse_args(inner).map_err(|e| format!("`{s}`: {e}"))? {
                if args.iter().any(|(k, _)| *k == key) {
                    return Err(format!("`{s}`: duplicate argument `{key}`"));
                }
                args.push((key, value));
            }
        }
        Ok(PolicyExpr {
            name: name.to_string(),
            args,
        })
    }
}

/// Tokenise the inside of the parentheses: `key=value, key=value`.
fn parse_args(inner: &str) -> Result<Vec<(String, ArgValue)>, String> {
    let mut out = Vec::new();
    let mut rest = inner.trim_start();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("expected `key=value`, got `{}`", rest.trim()))?;
        let key = rest[..eq].trim();
        if key.is_empty() {
            return Err("missing argument key before `=`".into());
        }
        if !key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(format!("invalid argument key `{key}`"));
        }
        rest = rest[eq + 1..].trim_start();
        let (value, after) = parse_value(rest)?;
        out.push((key.to_string(), value));
        rest = after.trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None if rest.is_empty() => break,
            None => return Err(format!("expected `,` before `{rest}`")),
        }
    }
    Ok(out)
}

/// Parse one value off the front of `rest`; returns (value, remainder).
fn parse_value(rest: &str) -> Result<(ArgValue, &str), String> {
    if let Some(q) = rest.strip_prefix('"') {
        // Quoted string with minimal escapes.
        let mut s = String::new();
        let mut chars = q.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((ArgValue::Str(s), &q[i + 1..])),
                '\\' => match chars.next() {
                    Some((_, '"')) => s.push('"'),
                    Some((_, '\\')) => s.push('\\'),
                    Some((_, 'n')) => s.push('\n'),
                    Some((_, other)) => return Err(format!("unknown escape `\\{other}`")),
                    None => return Err("unterminated string".into()),
                },
                c => s.push(c),
            }
        }
        return Err("unterminated string".into());
    }
    let end = rest.find([',', ')']).unwrap_or(rest.len());
    let token = rest[..end].trim();
    if token.is_empty() {
        return Err("missing argument value".into());
    }
    if token
        .chars()
        .any(|c| c.is_whitespace() || "=\"(".contains(c))
    {
        return Err(format!(
            "invalid bare value `{token}` (quote strings containing spaces)"
        ));
    }
    let value = if token == "true" {
        ArgValue::Bool(true)
    } else if token == "false" {
        ArgValue::Bool(false)
    } else if let Ok(i) = token.parse::<i64>() {
        ArgValue::Int(i)
    } else if let Ok(f) = token.parse::<f64>() {
        if !f.is_finite() {
            return Err(format!("non-finite number `{token}`"));
        }
        ArgValue::Float(f)
    } else {
        ArgValue::Str(token.to_string())
    };
    Ok((value, &rest[end..]))
}

/// One declared parameter after binding: its effective value (provided
/// or defaulted) and whether the provided value differs from the
/// default.
#[derive(Debug, Clone)]
struct BoundParam {
    key: &'static str,
    /// Effective value; `None` when the spec has no static default and
    /// the argument was not provided (the entry computes it at runtime).
    value: Option<ArgValue>,
    /// Provided *and* different from the declared default — i.e. part of
    /// the canonical spelling.
    non_default: bool,
}

/// A policy expression validated against an entry's [`ParamSpec`]s.
#[derive(Debug, Clone)]
pub struct BoundArgs {
    params: Vec<BoundParam>,
}

impl BoundArgs {
    /// Validate `expr`'s arguments against `specs`. `entry` is the
    /// canonical entry name, used in error messages (which always spell
    /// out the accepted parameters with types and defaults).
    pub fn bind(expr: &PolicyExpr, specs: &[ParamSpec], entry: &str) -> Result<BoundArgs, String> {
        let mut provided: Vec<Option<ArgValue>> = vec![None; specs.len()];
        for (key, value) in &expr.args {
            let Some(i) = specs.iter().position(|p| p.key == key) else {
                return Err(format!(
                    "unknown parameter `{key}` for `{entry}` — {}",
                    describe_params(entry, specs)
                ));
            };
            let coerced = coerce(value, specs[i].kind).ok_or_else(|| {
                format!(
                    "parameter `{key}` of `{entry}` expects {}, got {} `{value}` — {}",
                    specs[i].kind,
                    value.kind_name(),
                    describe_params(entry, specs)
                )
            })?;
            provided[i] = Some(coerced);
        }
        let params = specs
            .iter()
            .zip(provided)
            .map(|(spec, provided)| match provided {
                Some(v) => {
                    let non_default = spec.default.as_ref() != Some(&v);
                    BoundParam {
                        key: spec.key,
                        value: Some(v),
                        non_default,
                    }
                }
                None => BoundParam {
                    key: spec.key,
                    value: spec.default.clone(),
                    non_default: false,
                },
            })
            .collect();
        Ok(BoundArgs { params })
    }

    /// The canonical spelling of the expression: the bare `name` when
    /// every argument equals its default, `name(k=v, …)` (declaration
    /// order, canonical value rendering) otherwise.
    pub fn canonical(&self, name: &str) -> String {
        let parts: Vec<String> = self
            .params
            .iter()
            .filter(|p| p.non_default)
            .map(|p| {
                format!(
                    "{}={}",
                    p.key,
                    p.value.as_ref().expect("non-default is provided")
                )
            })
            .collect();
        if parts.is_empty() {
            name.to_string()
        } else {
            format!("{name}({})", parts.join(", "))
        }
    }

    /// `true` when every argument equals its declared default.
    pub fn is_all_default(&self) -> bool {
        self.params.iter().all(|p| !p.non_default)
    }

    fn value(&self, key: &str) -> Option<&ArgValue> {
        self.params
            .iter()
            .find(|p| p.key == key)
            .and_then(|p| p.value.as_ref())
    }

    /// Effective float value of `key` (`None`: no value and no default).
    pub fn f64(&self, key: &str) -> Option<f64> {
        match self.value(key)? {
            ArgValue::Float(f) => Some(*f),
            ArgValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Effective integer value of `key`.
    pub fn i64(&self, key: &str) -> Option<i64> {
        match self.value(key)? {
            ArgValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Effective non-negative integer value of `key` (negative values
    /// were rejected by the entry's own validation or saturate to zero).
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.i64(key).map(|i| i.max(0) as u64)
    }

    /// Effective boolean value of `key`.
    pub fn bool(&self, key: &str) -> Option<bool> {
        match self.value(key)? {
            ArgValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Effective string value of `key`.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.value(key)? {
            ArgValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// The shared resolution spine of every policy registry: parse `input`,
/// look the name up (`lookup`, case handled by the caller; `unknown`
/// renders the error when it misses, typically listing the live
/// registry), validate the arguments against the entry's parameters and
/// canonicalise. An expression whose arguments all equal their defaults
/// resolves to the base handle itself; anything else is handed to
/// `configure(canonical_key, bound, base)`, which interns and builds
/// the configured instance (the only registry-specific step).
///
/// Keeping this spine in one place means canonical-identity semantics —
/// the property cache keys and table keys rely on — cannot drift
/// between the four registries.
pub fn resolve_configured<H: Copy>(
    input: &str,
    lookup: impl FnOnce(&str) -> Option<H>,
    unknown: impl FnOnce(&str) -> String,
    entry_key: impl Fn(H) -> &'static str,
    entry_params: impl FnOnce(H) -> Vec<ParamSpec>,
    configure: impl FnOnce(String, BoundArgs, H) -> Result<H, String>,
) -> Result<H, String> {
    let expr = PolicyExpr::parse(input)?;
    let Some(base) = lookup(&expr.name) else {
        return Err(unknown(&expr.name));
    };
    let specs = entry_params(base);
    let bound = BoundArgs::bind(&expr, &specs, entry_key(base))?;
    let key = bound.canonical(entry_key(base));
    if key == entry_key(base) {
        return Ok(base);
    }
    configure(key, bound, base)
}

/// Coerce a parsed value to the declared kind (`Int` → `Float` is the
/// only widening allowed).
fn coerce(value: &ArgValue, kind: ParamKind) -> Option<ArgValue> {
    match (value, kind) {
        (ArgValue::Int(i), ParamKind::Int) => Some(ArgValue::Int(*i)),
        (ArgValue::Int(i), ParamKind::Float) => Some(ArgValue::Float(*i as f64)),
        (ArgValue::Float(f), ParamKind::Float) => Some(ArgValue::Float(*f)),
        (ArgValue::Bool(b), ParamKind::Bool) => Some(ArgValue::Bool(*b)),
        (ArgValue::Str(s), ParamKind::Str) => Some(ArgValue::Str(s.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<ParamSpec> {
        vec![
            ParamSpec::float("factor", Some(2.0), "imbalance factor"),
            ParamSpec::int("floor_s", None, "absolute floor in seconds"),
        ]
    }

    #[test]
    fn bare_name_parses() {
        let e = PolicyExpr::parse("load-threshold").unwrap();
        assert_eq!(e.name, "load-threshold");
        assert!(e.args.is_empty());
        let e = PolicyExpr::parse("  EASY-SJF  ").unwrap();
        assert_eq!(e.name, "EASY-SJF");
    }

    #[test]
    fn empty_parens_equal_bare_name() {
        let e = PolicyExpr::parse("load-threshold()").unwrap();
        assert_eq!(e.name, "load-threshold");
        assert!(e.args.is_empty());
        let b = BoundArgs::bind(&e, &specs(), "load-threshold").unwrap();
        assert_eq!(b.canonical("load-threshold"), "load-threshold");
        assert!(b.is_all_default());
    }

    #[test]
    fn args_parse_with_types() {
        let e = PolicyExpr::parse("x(a=1, b=1.5, c=true, d=word, e=\"two words\")").unwrap();
        assert_eq!(
            e.args,
            vec![
                ("a".into(), ArgValue::Int(1)),
                ("b".into(), ArgValue::Float(1.5)),
                ("c".into(), ArgValue::Bool(true)),
                ("d".into(), ArgValue::Str("word".into())),
                ("e".into(), ArgValue::Str("two words".into())),
            ]
        );
    }

    #[test]
    fn parse_errors_are_specific() {
        assert!(PolicyExpr::parse("").is_err());
        assert!(PolicyExpr::parse("x(").unwrap_err().contains("closing"));
        assert!(PolicyExpr::parse("(a=1)").unwrap_err().contains("name"));
        assert!(PolicyExpr::parse("x(a)").unwrap_err().contains("key=value"));
        assert!(PolicyExpr::parse("x(=1)").unwrap_err().contains("key"));
        assert!(PolicyExpr::parse("x(a=1 b=2)")
            .unwrap_err()
            .contains("quote strings"));
        assert!(PolicyExpr::parse("x(a=1, a=2)")
            .unwrap_err()
            .contains("duplicate"));
        assert!(PolicyExpr::parse("x y").is_err());
    }

    #[test]
    fn default_valued_args_canonicalise_away() {
        for spelled in ["lt", "lt()", "lt(factor=2)", "lt(factor=2.0)"] {
            let e = PolicyExpr::parse(spelled).unwrap();
            let b = BoundArgs::bind(&e, &specs(), "lt").unwrap();
            assert_eq!(b.canonical("lt"), "lt", "{spelled}");
        }
        let e = PolicyExpr::parse("lt(factor=1.5)").unwrap();
        let b = BoundArgs::bind(&e, &specs(), "lt").unwrap();
        assert_eq!(b.canonical("lt"), "lt(factor=1.5)");
        assert!(!b.is_all_default());
        // Int literal coerces to float and renders shortest.
        let e = PolicyExpr::parse("lt(factor=3)").unwrap();
        let b = BoundArgs::bind(&e, &specs(), "lt").unwrap();
        assert_eq!(b.canonical("lt"), "lt(factor=3)");
        assert_eq!(b.f64("factor"), Some(3.0));
    }

    #[test]
    fn runtime_defaults_are_never_dropped() {
        let e = PolicyExpr::parse("lt(floor_s=60)").unwrap();
        let b = BoundArgs::bind(&e, &specs(), "lt").unwrap();
        assert_eq!(b.canonical("lt"), "lt(floor_s=60)");
        assert_eq!(b.u64("floor_s"), Some(60));
        // Unprovided: no value at all.
        let e = PolicyExpr::parse("lt").unwrap();
        let b = BoundArgs::bind(&e, &specs(), "lt").unwrap();
        assert_eq!(b.u64("floor_s"), None);
        assert_eq!(b.f64("factor"), Some(2.0), "static default fills in");
    }

    #[test]
    fn canonical_orders_by_declaration() {
        let e = PolicyExpr::parse("lt(floor_s=30, factor=1.5)").unwrap();
        let b = BoundArgs::bind(&e, &specs(), "lt").unwrap();
        assert_eq!(b.canonical("lt"), "lt(factor=1.5, floor_s=30)");
    }

    #[test]
    fn bind_rejects_unknown_and_ill_typed_args() {
        let e = PolicyExpr::parse("lt(factr=3)").unwrap();
        let err = BoundArgs::bind(&e, &specs(), "load-threshold").unwrap_err();
        assert!(err.contains("unknown parameter `factr`"), "{err}");
        assert!(err.contains("factor: float = 2"), "{err}");
        assert!(err.contains("floor_s: int"), "{err}");
        assert!(err.contains("imbalance factor"), "{err}");

        let e = PolicyExpr::parse("lt(factor=fast)").unwrap();
        let err = BoundArgs::bind(&e, &specs(), "load-threshold").unwrap_err();
        assert!(err.contains("expects float"), "{err}");
        assert!(err.contains("got string"), "{err}");

        let e = PolicyExpr::parse("lt(floor_s=1.5)").unwrap();
        let err = BoundArgs::bind(&e, &specs(), "load-threshold").unwrap_err();
        assert!(err.contains("expects int"), "{err}");
    }

    #[test]
    fn no_param_entries_reject_any_arg() {
        let e = PolicyExpr::parse("FCFS(x=1)").unwrap();
        let err = BoundArgs::bind(&e, &[], "FCFS").unwrap_err();
        assert!(err.contains("takes no parameters"), "{err}");
        let e = PolicyExpr::parse("FCFS()").unwrap();
        assert!(BoundArgs::bind(&e, &[], "FCFS").is_ok());
    }

    #[test]
    fn describe_params_lists_everything() {
        let d = describe_params("lt", &specs());
        assert!(d.contains("factor: float = 2 (imbalance factor)"), "{d}");
        assert_eq!(describe_params("FCFS", &[]), "`FCFS` takes no parameters");
    }
}
