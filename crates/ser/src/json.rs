//! JSON value model, recursive-descent parser and canonical writer.
//!
//! Canonical form: object keys are stored in a `BTreeMap` (sorted), no
//! insignificant whitespace, integers printed in decimal, floats with
//! Rust's shortest-round-trip `Display`. Encoding the same `Value` twice
//! therefore yields identical bytes — the invariant the campaign result
//! cache hashes and the resume-determinism tests depend on.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document. Integers keep full `i64`/`u64` precision rather than
/// being forced through `f64`, because job ids and simulated timestamps
/// are 64-bit counters.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers (the common case for times and counts).
    UInt(u64),
    /// Everything with a fractional part or exponent.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, keys sorted.
    Obj(BTreeMap<String, Value>),
}

/// Parse or access error with a short human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct SerError {
    /// What went wrong.
    pub message: String,
}

impl SerError {
    /// Build an error with `message`.
    pub fn new(message: impl Into<String>) -> Self {
        SerError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SerError {}

impl Value {
    /// Empty object.
    pub fn object() -> Value {
        Value::Obj(BTreeMap::new())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Insert into an object; panics when `self` is not an object.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        match self {
            Value::Obj(m) => {
                m.insert(key.into(), value.into());
            }
            other => panic!("insert on non-object JSON value {other:?}"),
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Unsigned accessor (accepts non-negative `Int` too).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Float accessor (accepts integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object accessor.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Typed member access helpers for manual deserializers: a missing key
    /// or wrong type becomes a descriptive error.
    pub fn req(&self, key: &str) -> Result<&Value, SerError> {
        self.get(key)
            .ok_or_else(|| SerError::new(format!("missing key `{key}`")))
    }

    /// Required string member.
    pub fn req_str(&self, key: &str) -> Result<&str, SerError> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| SerError::new(format!("`{key}` must be a string")))
    }

    /// Required unsigned member.
    pub fn req_u64(&self, key: &str) -> Result<u64, SerError> {
        self.req(key)?
            .as_u64()
            .ok_or_else(|| SerError::new(format!("`{key}` must be a non-negative integer")))
    }

    /// Required float member.
    pub fn req_f64(&self, key: &str) -> Result<f64, SerError> {
        self.req(key)?
            .as_f64()
            .ok_or_else(|| SerError::new(format!("`{key}` must be a number")))
    }

    /// Required array member.
    pub fn req_arr(&self, key: &str) -> Result<&[Value], SerError> {
        self.req(key)?
            .as_arr()
            .ok_or_else(|| SerError::new(format!("`{key}` must be an array")))
    }

    /// Canonical compact encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Human-oriented encoding with 2-space indentation (still canonical
    /// in key order and number formatting).
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Float(f) => write_f64(out, *f),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Value, SerError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // Keep floats distinguishable from integers on re-parse.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; encode as null like serde_json does.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! from_num {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::$variant(v as $conv) }
        }
    )*};
}

from_num!(u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64, u64 => UInt as u64,
          usize => UInt as u64, i32 => Int as i64, i64 => Int as i64, f64 => Float as f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Arr(v.into_iter().map(Into::into).collect())
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> SerError {
        SerError::new(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), SerError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, SerError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, SerError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, SerError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, SerError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, SerError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our data;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, SerError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let text = r#"{"b":[1,2.5,-3,true,null],"a":"x\n\"y\"","n":18446744073709551615}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("n").unwrap(), &Value::UInt(u64::MAX));
        assert_eq!(v.get("a").unwrap().as_str(), Some("x\n\"y\""));
        let re = Value::parse(&v.encode()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn canonical_encoding_sorts_keys_and_is_stable() {
        let a = Value::parse(r#"{"z":1,"a":2}"#).unwrap();
        let b = Value::parse(r#"{"a":2,"z":1}"#).unwrap();
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.encode(), r#"{"a":2,"z":1}"#);
        assert_eq!(a.encode(), a.clone().encode());
    }

    #[test]
    fn floats_reparse_as_floats() {
        let v = Value::Float(2.0);
        assert_eq!(v.encode(), "2.0");
        assert_eq!(Value::parse("2.0").unwrap(), Value::Float(2.0));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn pretty_matches_compact_semantics() {
        let v = Value::parse(r#"{"a":[1,{"b":2}],"c":"d"}"#).unwrap();
        assert_eq!(Value::parse(&v.encode_pretty()).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn req_helpers() {
        let v = Value::parse(r#"{"s":"x","n":3,"f":1.5,"a":[1]}"#).unwrap();
        assert_eq!(v.req_str("s").unwrap(), "x");
        assert_eq!(v.req_u64("n").unwrap(), 3);
        assert_eq!(v.req_f64("f").unwrap(), 1.5);
        assert_eq!(v.req_arr("a").unwrap().len(), 1);
        assert!(v.req_str("missing").is_err());
        assert!(v.req_u64("s").is_err());
    }
}
