//! # grid-ser — dependency-free serialization for the grid workspace
//!
//! The campaign engine needs three things a build container without
//! registry access cannot get from crates.io:
//!
//! * a **JSON** value model with a parser and a *canonical* writer
//!   (object keys sorted, stable number formatting) so cached result
//!   records are byte-identical across runs — the property the
//!   content-addressed cache and the resume tests rely on;
//! * a **TOML subset** parser for human-authored campaign spec files
//!   (tables, arrays of tables, arrays, strings, integers, floats,
//!   booleans, comments — no datetimes);
//! * a **stable hash** ([`stable_hash128`]) for deriving cache keys from
//!   canonical JSON, independent of `std::hash`'s per-process seeds.
//!
//! Both parsers produce the same [`Value`] type, so spec loading is
//! format-agnostic.
//!
//! It also carries the **policy-expression** layer ([`expr`]): parsing,
//! typed validation and canonicalisation of `name(key=value, …)`
//! strings, shared by every policy registry in the workspace.

pub mod expr;
pub mod json;
pub mod toml;

pub use expr::{ArgValue, BoundArgs, ParamKind, ParamSpec, PolicyExpr};
pub use json::Value;

/// FNV-1a 64-bit over `bytes`, starting from `offset`.
fn fnv1a(offset: u64, bytes: &[u8]) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// 128 bits of stable, process-independent hash, hex-encoded (32 chars).
///
/// Two independent FNV-1a streams (the standard offset basis and a
/// re-seeded one) are concatenated. Not cryptographic — cache consumers
/// must verify the stored descriptor on load, which [`the campaign
/// cache`](../grid_campaign/cache/index.html) does.
pub fn stable_hash128(bytes: &[u8]) -> String {
    let h1 = fnv1a(0xcbf2_9ce4_8422_2325, bytes);
    let h2 = fnv1a(h1 ^ 0x9E37_79B9_7F4A_7C15, bytes);
    format!("{h1:016x}{h2:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_sensitive() {
        let a = stable_hash128(b"jun/het/FCFS");
        assert_eq!(a, stable_hash128(b"jun/het/FCFS"));
        assert_eq!(a.len(), 32);
        assert_ne!(a, stable_hash128(b"jun/het/CBF"));
        assert_ne!(a, stable_hash128(b""));
    }
}
