//! Line-oriented parser for the TOML subset campaign specs use.
//!
//! Supported: `[table]` / `[a.b]` headers, `[[array-of-tables]]`,
//! `key = value` with basic and literal strings, integers (with `_`
//! separators), floats, booleans, (multi-line) arrays and inline tables,
//! plus `#` comments. Not supported (not needed for spec files):
//! datetimes, multi-line strings, dotted keys on the left-hand side.
//!
//! The output is the same [`Value`] tree the JSON parser produces, so
//! callers are format-agnostic.

use std::collections::BTreeMap;

use crate::json::{SerError, Value};

/// Parse a TOML document into a [`Value::Obj`] tree.
pub fn parse(text: &str) -> Result<Value, SerError> {
    let mut root = BTreeMap::new();
    // Path of the table currently being filled; empty = root.
    let mut current: Vec<String> = Vec::new();
    let mut lines = LogicalLines::new(text);
    while let Some((line_no, line)) = lines.next_line()? {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let name = header
                .strip_suffix("]]")
                .ok_or_else(|| err(line_no, "unterminated `[[` header"))?;
            current = split_path(name, line_no)?;
            push_array_table(&mut root, &current, line_no)?;
        } else if let Some(header) = line.strip_prefix('[') {
            let name = header
                .strip_suffix(']')
                .ok_or_else(|| err(line_no, "unterminated `[` header"))?;
            current = split_path(name, line_no)?;
            ensure_table(&mut root, &current, line_no)?;
        } else {
            let (key, raw) = line
                .split_once('=')
                .ok_or_else(|| err(line_no, "expected `key = value`"))?;
            let key = parse_key(key.trim(), line_no)?;
            let value = parse_value(raw.trim(), line_no)?;
            let table = navigate(&mut root, &current, line_no)?;
            if table.insert(key.clone(), value).is_some() {
                return Err(err(line_no, &format!("duplicate key `{key}`")));
            }
        }
    }
    Ok(Value::Obj(root))
}

fn err(line: usize, msg: &str) -> SerError {
    SerError::new(format!("TOML parse error on line {line}: {msg}"))
}

/// Iterator over logical lines: a line whose brackets are unbalanced
/// pulls in following physical lines (multi-line arrays).
struct LogicalLines<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> LogicalLines<'a> {
    fn new(text: &'a str) -> Self {
        LogicalLines {
            lines: text.lines().enumerate(),
        }
    }

    fn next_line(&mut self) -> Result<Option<(usize, String)>, SerError> {
        let Some((idx, first)) = self.lines.next() else {
            return Ok(None);
        };
        let line_no = idx + 1;
        let mut logical = strip_comment(first).to_string();
        let mut depth = bracket_depth(&logical, line_no)?;
        while depth > 0 {
            let Some((_, cont)) = self.lines.next() else {
                return Err(err(line_no, "unterminated array"));
            };
            logical.push(' ');
            logical.push_str(strip_comment(cont));
            depth = bracket_depth(&logical, line_no)?;
        }
        Ok(Some((line_no, logical)))
    }
}

/// A `"` at `i` toggles basic-string mode unless it is escaped.
///
/// A quote is escaped iff an *odd* number of backslashes immediately
/// precedes it — `"x\""` escapes the quote, but in `"x\\"` the
/// backslash escapes itself and the quote closes the string.
fn quote_toggles_basic(in_basic: bool, bytes: &[u8], i: usize) -> bool {
    if !in_basic {
        return true;
    }
    let mut backslashes = 0;
    while backslashes < i && bytes[i - 1 - backslashes] == b'\\' {
        backslashes += 1;
    }
    backslashes % 2 == 0
}

/// Remove a trailing `#` comment, respecting strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_basic = false;
    let mut in_literal = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            // Escaped quotes inside basic strings do not toggle.
            b'"' if !in_literal && quote_toggles_basic(in_basic, bytes, i) => {
                in_basic = !in_basic;
            }
            b'\'' if !in_basic => in_literal = !in_literal,
            b'#' if !in_basic && !in_literal => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Net `[`/`]` nesting of `line`, ignoring brackets inside strings and
/// table headers (a header line is always balanced anyway).
fn bracket_depth(line: &str, line_no: usize) -> Result<i32, SerError> {
    let bytes = line.as_bytes();
    let mut depth = 0i32;
    let mut in_basic = false;
    let mut in_literal = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' if !in_literal && quote_toggles_basic(in_basic, bytes, i) => {
                in_basic = !in_basic;
            }
            b'\'' if !in_basic => in_literal = !in_literal,
            b'[' if !in_basic && !in_literal => depth += 1,
            b']' if !in_basic && !in_literal => depth -= 1,
            _ => {}
        }
    }
    if depth < 0 {
        return Err(err(line_no, "unbalanced `]`"));
    }
    Ok(depth)
}

fn split_path(name: &str, line_no: usize) -> Result<Vec<String>, SerError> {
    name.split('.')
        .map(|part| parse_key(part.trim(), line_no))
        .collect()
}

fn parse_key(key: &str, line_no: usize) -> Result<String, SerError> {
    if let Some(inner) = key.strip_prefix('"').and_then(|k| k.strip_suffix('"')) {
        return Ok(inner.to_string());
    }
    if key.is_empty()
        || !key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(err(line_no, &format!("invalid key `{key}`")));
    }
    Ok(key.to_string())
}

/// Walk to (and create) the table at `path`.
fn navigate<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
    line_no: usize,
) -> Result<&'a mut BTreeMap<String, Value>, SerError> {
    let mut table = root;
    for part in path {
        let entry = table.entry(part.clone()).or_insert_with(Value::object);
        table = match entry {
            Value::Obj(m) => m,
            // `[[x]]` array-of-tables: keys land in the last element.
            Value::Arr(items) => match items.last_mut() {
                Some(Value::Obj(m)) => m,
                _ => return Err(err(line_no, &format!("`{part}` is not a table"))),
            },
            _ => return Err(err(line_no, &format!("`{part}` is not a table"))),
        };
    }
    Ok(table)
}

fn ensure_table(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    line_no: usize,
) -> Result<(), SerError> {
    navigate(root, path, line_no).map(|_| ())
}

fn push_array_table(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    line_no: usize,
) -> Result<(), SerError> {
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| err(line_no, "empty `[[ ]]` header"))?;
    let parent = navigate(root, parents, line_no)?;
    let entry = parent
        .entry(last.clone())
        .or_insert_with(|| Value::Arr(Vec::new()));
    match entry {
        Value::Arr(items) => {
            items.push(Value::object());
            Ok(())
        }
        _ => Err(err(line_no, &format!("`{last}` is not an array of tables"))),
    }
}

fn parse_value(raw: &str, line_no: usize) -> Result<Value, SerError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(err(line_no, "missing value"));
    }
    match raw.as_bytes()[0] {
        b'"' => {
            let inner = raw
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .ok_or_else(|| err(line_no, "unterminated string"))?;
            unescape_basic(inner, line_no)
        }
        b'\'' => raw
            .strip_prefix('\'')
            .and_then(|r| r.strip_suffix('\''))
            .map(|s| Value::Str(s.to_string()))
            .ok_or_else(|| err(line_no, "unterminated literal string")),
        b'[' => {
            let inner = raw
                .strip_prefix('[')
                .and_then(|r| r.strip_suffix(']'))
                .ok_or_else(|| err(line_no, "unterminated array"))?;
            let mut items = Vec::new();
            for piece in split_top_level(inner, line_no)? {
                items.push(parse_value(&piece, line_no)?);
            }
            Ok(Value::Arr(items))
        }
        b'{' => {
            let inner = raw
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .ok_or_else(|| err(line_no, "unterminated inline table"))?;
            let mut map = BTreeMap::new();
            for piece in split_top_level(inner, line_no)? {
                let (k, v) = piece
                    .split_once('=')
                    .ok_or_else(|| err(line_no, "inline table needs `key = value`"))?;
                let key = parse_key(k.trim(), line_no)?;
                if map
                    .insert(key.clone(), parse_value(v.trim(), line_no)?)
                    .is_some()
                {
                    return Err(err(
                        line_no,
                        &format!("duplicate key `{key}` in inline table"),
                    ));
                }
            }
            Ok(Value::Obj(map))
        }
        _ => {
            if raw == "true" {
                return Ok(Value::Bool(true));
            }
            if raw == "false" {
                return Ok(Value::Bool(false));
            }
            let cleaned: String = raw.chars().filter(|&c| c != '_').collect();
            if cleaned.contains(['.', 'e', 'E']) {
                if let Ok(f) = cleaned.parse::<f64>() {
                    return Ok(Value::Float(f));
                }
            } else {
                if let Ok(u) = cleaned.parse::<u64>() {
                    return Ok(Value::UInt(u));
                }
                if let Ok(i) = cleaned.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            }
            Err(err(line_no, &format!("cannot parse value `{raw}`")))
        }
    }
}

fn unescape_basic(inner: &str, line_no: usize) -> Result<Value, SerError> {
    let mut s = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            s.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => s.push('\n'),
            Some('t') => s.push('\t'),
            Some('r') => s.push('\r'),
            Some('"') => s.push('"'),
            Some('\\') => s.push('\\'),
            other => {
                return Err(err(
                    line_no,
                    &format!("unsupported escape `\\{}`", other.unwrap_or(' ')),
                ))
            }
        }
    }
    Ok(Value::Str(s))
}

/// Split `inner` on top-level commas (not inside strings/brackets).
fn split_top_level(inner: &str, line_no: usize) -> Result<Vec<String>, SerError> {
    let mut pieces = Vec::new();
    let mut depth = 0i32;
    let mut in_basic = false;
    let mut in_literal = false;
    let mut start = 0usize;
    let bytes = inner.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' if !in_literal && quote_toggles_basic(in_basic, bytes, i) => {
                in_basic = !in_basic;
            }
            b'\'' if !in_basic => in_literal = !in_literal,
            b'[' | b'{' if !in_basic && !in_literal => depth += 1,
            b']' | b'}' if !in_basic && !in_literal => depth -= 1,
            b',' if depth == 0 && !in_basic && !in_literal => {
                pieces.push(inner[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 || in_basic || in_literal {
        return Err(err(line_no, "unbalanced brackets or quotes"));
    }
    let tail = inner[start..].trim();
    if !tail.is_empty() {
        pieces.push(tail.to_string());
    }
    Ok(pieces.into_iter().filter(|p| !p.is_empty()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_keys_and_scalars() {
        let doc = r#"
# campaign
name = "paper"
fraction = 0.02
seeds = [42, 43]   # two repetitions
enabled = true
count = 1_000

[matrix]
scenarios = ["jan", "jun"]

[matrix.nested]
x = -3
"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.req_str("name").unwrap(), "paper");
        assert_eq!(v.req_f64("fraction").unwrap(), 0.02);
        assert_eq!(v.req_u64("count").unwrap(), 1000);
        assert_eq!(v.get("enabled").unwrap().as_bool(), Some(true));
        let seeds = v.req_arr("seeds").unwrap();
        assert_eq!(seeds, &[Value::UInt(42), Value::UInt(43)]);
        let matrix = v.get("matrix").unwrap();
        assert_eq!(
            matrix.req_arr("scenarios").unwrap(),
            &[Value::Str("jan".into()), Value::Str("jun".into())]
        );
        assert_eq!(
            matrix.get("nested").unwrap().get("x").unwrap(),
            &Value::Int(-3)
        );
    }

    #[test]
    fn multiline_arrays_and_comments() {
        let doc = "
values = [
    1,  # one
    2,
    3,
]
";
        let v = parse(doc).unwrap();
        assert_eq!(
            v.req_arr("values").unwrap(),
            &[Value::UInt(1), Value::UInt(2), Value::UInt(3)]
        );
    }

    #[test]
    fn array_of_tables_and_inline_tables() {
        let doc = r#"
[[sweep]]
period = 3600
[[sweep]]
period = 7200
extra = { label = "slow", scale = 2.0 }
"#;
        let v = parse(doc).unwrap();
        let sweeps = v.req_arr("sweep").unwrap();
        assert_eq!(sweeps.len(), 2);
        assert_eq!(sweeps[0].req_u64("period").unwrap(), 3600);
        assert_eq!(
            sweeps[1].get("extra").unwrap().req_str("label").unwrap(),
            "slow"
        );
    }

    #[test]
    fn strings_with_tricky_content() {
        let doc = r#"
a = "hash # inside"
b = 'literal \ backslash'
c = "escaped \"quote\" and \n newline"
"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.req_str("a").unwrap(), "hash # inside");
        assert_eq!(v.req_str("b").unwrap(), r"literal \ backslash");
        assert_eq!(v.req_str("c").unwrap(), "escaped \"quote\" and \n newline");
    }

    #[test]
    fn trailing_escaped_backslash_closes_the_string() {
        // The closing quote after `\\` is NOT escaped: the backslash
        // escaped itself.
        let v = parse("a = \"x\\\\\" # comment\nb = [\"y\\\\\", \"z\"]").unwrap();
        assert_eq!(v.req_str("a").unwrap(), "x\\");
        assert_eq!(
            v.req_arr("b").unwrap(),
            &[Value::Str("y\\".into()), Value::Str("z".into())]
        );
        // Odd backslash count still escapes the quote.
        let v = parse(r#"c = "quote \" inside""#).unwrap();
        assert_eq!(v.req_str("c").unwrap(), "quote \" inside");
    }

    #[test]
    fn inline_table_duplicate_keys_rejected() {
        let err = parse("x = { a = 1, a = 2 }").unwrap_err();
        assert!(err.to_string().contains("duplicate key `a`"), "{err}");
    }

    #[test]
    fn errors() {
        assert!(parse("key").is_err());
        assert!(parse("[unterminated").is_err());
        assert!(parse("a = ").is_err());
        assert!(parse("a = 1\na = 2").is_err());
        assert!(parse("a = [1, 2").is_err());
    }
}
