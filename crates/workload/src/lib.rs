//! # grid-workload — traces for the grid simulator
//!
//! The paper replays real submission traces: six months of Grid'5000 logs
//! (Bordeaux, Lyon, Toulouse — first half of 2008) and two logs from the
//! Parallel Workload Archive (CTC SP2, SDSC SP2), *unclean* versions
//! included ("bad" jobs kept, §3.3). Those logs are not redistributable, so
//! this crate provides both:
//!
//! * an [`swf`] module reading and writing the Parallel Workload Archive's
//!   **Standard Workload Format**, so real logs can be dropped in when
//!   available, and
//! * a [`model`] module synthesizing traces with the statistical features
//!   that matter to the paper's mechanism (bursty arrivals, walltime
//!   over-estimation, rigid power-of-two-ish sizes, kill-at-walltime
//!   "bad" jobs), with [`paper`] presets matching Table 1's job counts
//!   exactly.
//!
//! All synthesis is deterministic given a scenario and a seed.

pub mod model;
pub mod paper;
pub mod stats;
pub mod swf;

pub use model::{ArrivalSpec, RuntimeSpec, SiteWorkloadSpec, SizeSpec, WalltimeSpec};
pub use paper::Scenario;
pub use stats::WorkloadStats;
