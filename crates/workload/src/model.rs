//! Synthetic workload model.
//!
//! Substitutes the paper's (non-redistributable) Grid'5000 and PWA traces
//! with statistically comparable synthetic traces. The model captures the
//! features the reallocation mechanism reacts to:
//!
//! * **Bursty, rhythmic arrivals.** Arrival intensity follows a daily and
//!   weekly cycle plus randomly placed high-intensity burst windows — the
//!   paper explicitly motivates reallocation with "bursts of submissions"
//!   that batch systems put up with badly (§1, citing Sonmez et al.).
//! * **Walltime over-estimation.** Users over-evaluate walltimes so their
//!   jobs are not killed (§1); the model draws a multiplicative
//!   over-estimation factor and rounds the result up to "round" values
//!   (10 min, 1 h, 2 h, …) the way users do. Early completions are what
//!   free the space reallocation exploits.
//! * **"Bad" jobs.** The paper deliberately keeps the unclean PWA logs
//!   (§3.3): a small fraction of jobs exceed their walltime (killed), and
//!   some fail almost instantly.
//! * **Rigid sizes.** Power-of-two-biased processor counts, bounded by the
//!   origin site's size.
//! * **Calibrated load.** Per-site target utilization rescales runtimes so
//!   that monthly load levels — the main driver of the paper's
//!   month-to-month differences — are controlled.

use grid_batch::JobSpec;
use grid_des::{Duration, SimRng, SimTime};

/// Arrival-process parameters.
#[derive(Debug, Clone)]
pub struct ArrivalSpec {
    /// Relative intensity per hour of day (24 entries).
    pub hourly_weights: [f64; 24],
    /// Relative intensity per day of week (7 entries, 0 = Monday).
    pub weekday_weights: [f64; 7],
    /// Number of burst windows over the whole span.
    pub n_bursts: usize,
    /// Burst window length bounds, in seconds.
    pub burst_len: (u64, u64),
    /// Intensity multiplier inside a burst window.
    pub burst_weight: f64,
}

impl Default for ArrivalSpec {
    fn default() -> Self {
        ArrivalSpec {
            // Night trough, morning ramp, office-hours plateau, evening
            // decline: the classic shape of supercomputer logs.
            hourly_weights: [
                0.25, 0.2, 0.15, 0.15, 0.15, 0.2, 0.3, 0.5, 0.9, 1.3, 1.5, 1.5, 1.3, 1.4, 1.5, 1.5,
                1.4, 1.2, 1.0, 0.8, 0.6, 0.5, 0.4, 0.3,
            ],
            weekday_weights: [1.0, 1.05, 1.05, 1.0, 0.95, 0.45, 0.35],
            n_bursts: 8,
            burst_len: (300, 3_600),
            burst_weight: 40.0,
        }
    }
}

/// Processor-count parameters.
#[derive(Debug, Clone)]
pub struct SizeSpec {
    /// `(weight, lo, hi)` buckets; a bucket is sampled by weight, then a
    /// size uniformly (power-of-two biased) within `[lo, hi]`.
    pub buckets: Vec<(f64, u32, u32)>,
    /// Probability that a non-serial size is rounded down to a power of
    /// two.
    pub p_pow2: f64,
}

impl SizeSpec {
    /// Default buckets for a site with `max_procs` processors.
    pub fn for_site(max_procs: u32) -> Self {
        let mut buckets = vec![(35.0, 1, 1)];
        if max_procs > 1 {
            buckets.push((25.0, 2, 8.min(max_procs)));
        }
        if max_procs > 8 {
            buckets.push((20.0, 9, 32.min(max_procs)));
        }
        if max_procs > 32 {
            buckets.push((14.0, 33, 128.min(max_procs)));
        }
        if max_procs > 128 {
            buckets.push((6.0, 129, max_procs));
        }
        SizeSpec {
            buckets,
            p_pow2: 0.6,
        }
    }
}

/// Runtime parameters (before utilization calibration).
#[derive(Debug, Clone)]
pub struct RuntimeSpec {
    /// `(weight, lo_secs, hi_secs)` classes; log-uniform within a class.
    pub classes: Vec<(f64, u64, u64)>,
}

impl Default for RuntimeSpec {
    fn default() -> Self {
        RuntimeSpec {
            classes: vec![
                (15.0, 10, 300),         // tiny
                (45.0, 300, 14_400),     // up to 4 h
                (30.0, 14_400, 86_400),  // up to a day
                (10.0, 86_400, 259_200), // up to 3 days
            ],
        }
    }
}

/// Walltime (user estimate) parameters.
#[derive(Debug, Clone)]
pub struct WalltimeSpec {
    /// `(weight, lo, hi)` over-estimation factor classes (`walltime =
    /// runtime × factor`, then rounded up to a round value).
    pub factor_classes: Vec<(f64, f64, f64)>,
    /// "Round" walltime values users pick, ascending, in seconds.
    pub round_values: Vec<u64>,
    /// Probability a job overruns its walltime and is killed.
    pub p_killed: f64,
    /// Probability a job fails almost instantly (runtime <= 30 s) while
    /// requesting a normal walltime.
    pub p_instant_failure: f64,
}

impl Default for WalltimeSpec {
    fn default() -> Self {
        WalltimeSpec {
            factor_classes: vec![
                (10.0, 1.0, 1.05),
                (25.0, 1.05, 2.0),
                (30.0, 2.0, 5.0),
                (20.0, 5.0, 10.0),
                (15.0, 10.0, 20.0),
            ],
            round_values: vec![
                600,
                1_800,
                3_600,
                2 * 3_600,
                4 * 3_600,
                8 * 3_600,
                12 * 3_600,
                24 * 3_600,
                48 * 3_600,
                72 * 3_600,
                120 * 3_600,
            ],
            p_killed: 0.03,
            p_instant_failure: 0.02,
        }
    }
}

/// Complete description of one site's synthetic trace.
#[derive(Debug, Clone)]
pub struct SiteWorkloadSpec {
    /// Number of jobs to generate (Table 1 drives this in the presets).
    pub n_jobs: usize,
    /// Site size; generated jobs never exceed it.
    pub max_procs: u32,
    /// Trace length.
    pub span: Duration,
    /// Arrival process.
    pub arrival: ArrivalSpec,
    /// Size distribution.
    pub size: SizeSpec,
    /// Runtime distribution.
    pub runtime: RuntimeSpec,
    /// Walltime model.
    pub walltime: WalltimeSpec,
    /// When set, rescale runtimes so the trace's total work equals
    /// `target × max_procs × span` core-seconds.
    pub target_utilization: Option<f64>,
}

impl SiteWorkloadSpec {
    /// A reasonable spec for a site of `max_procs` processors.
    pub fn new(n_jobs: usize, max_procs: u32, span: Duration) -> Self {
        SiteWorkloadSpec {
            n_jobs,
            max_procs,
            span,
            arrival: ArrivalSpec::default(),
            size: SizeSpec::for_site(max_procs),
            runtime: RuntimeSpec::default(),
            walltime: WalltimeSpec::default(),
            target_utilization: None,
        }
    }

    /// Builder: set the utilization target.
    pub fn with_utilization(mut self, u: f64) -> Self {
        assert!(u > 0.0, "utilization target must be positive");
        self.target_utilization = Some(u);
        self
    }

    /// Generate the trace. Jobs get ids `0..n_jobs` (callers re-identify
    /// through [`crate::swf::merge_traces`]) and `origin_site = 0`.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<JobSpec> {
        let arrivals = self.sample_arrivals(rng);
        let mut procs = Vec::with_capacity(self.n_jobs);
        let mut runtimes = Vec::with_capacity(self.n_jobs);
        for _ in 0..self.n_jobs {
            procs.push(self.sample_size(rng));
            runtimes.push(self.sample_runtime(rng));
        }
        self.calibrate_runtimes(&procs, &mut runtimes);
        let mut jobs = Vec::with_capacity(self.n_jobs);
        for i in 0..self.n_jobs {
            let (runtime, walltime) = self.sample_walltime(runtimes[i], rng);
            jobs.push(JobSpec {
                id: grid_batch::JobId(i as u64),
                submit: arrivals[i],
                procs: procs[i],
                runtime_ref: Duration(runtime),
                walltime_ref: Duration(walltime),
                origin_site: 0,
            });
        }
        jobs
    }

    /// Sample `n_jobs` arrival instants by inverse-CDF over a
    /// piecewise-constant intensity (hour-of-day × day-of-week × bursts).
    fn sample_arrivals(&self, rng: &mut SimRng) -> Vec<SimTime> {
        let span = self.span.as_secs().max(1);
        let n_hours = span.div_ceil(3_600) as usize;
        let mut weights: Vec<f64> = (0..n_hours)
            .map(|h| {
                let hod = h % 24;
                let dow = (h / 24) % 7;
                self.arrival.hourly_weights[hod] * self.arrival.weekday_weights[dow]
            })
            .collect();
        // Burst windows multiply the intensity of the hours they overlap.
        for _ in 0..self.arrival.n_bursts {
            let start = rng.gen_range(0..span);
            let len = rng.gen_range(self.arrival.burst_len.0..=self.arrival.burst_len.1);
            let h0 = (start / 3_600) as usize;
            let h1 = (((start + len).min(span - 1)) / 3_600) as usize;
            for w in weights.iter_mut().take(h1 + 1).skip(h0) {
                *w *= self.arrival.burst_weight;
            }
        }
        let total: f64 = weights.iter().sum();
        let cum: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        let mut out = Vec::with_capacity(self.n_jobs);
        for _ in 0..self.n_jobs {
            let u = rng.gen_f64() * total;
            let idx = cum.partition_point(|c| *c < u).min(n_hours - 1);
            let hour_start = idx as u64 * 3_600;
            let hour_len = (span - hour_start).clamp(1, 3_600);
            let offset = rng.gen_range(0..hour_len);
            out.push(SimTime(hour_start + offset));
        }
        out.sort_unstable();
        out
    }

    fn sample_size(&self, rng: &mut SimRng) -> u32 {
        let weights: Vec<f64> = self.size.buckets.iter().map(|b| b.0).collect();
        let (_, lo, hi) = self.size.buckets[rng.weighted_index(&weights)];
        if lo == hi {
            return lo;
        }
        let raw = rng.gen_range(lo..=hi);
        if raw > 1 && rng.gen_bool(self.size.p_pow2) {
            // Round down to a power of two, staying inside the bucket.
            let p2 = 1u32 << (31 - raw.leading_zeros());
            p2.clamp(lo, hi)
        } else {
            raw
        }
    }

    fn sample_runtime(&self, rng: &mut SimRng) -> u64 {
        let weights: Vec<f64> = self.runtime.classes.iter().map(|c| c.0).collect();
        let (_, lo, hi) = self.runtime.classes[rng.weighted_index(&weights)];
        rng.log_uniform(lo.max(1) as f64, hi.max(1) as f64).round() as u64
    }

    /// Rescale runtimes so total work hits the utilization target.
    fn calibrate_runtimes(&self, procs: &[u32], runtimes: &mut [u64]) {
        let Some(target) = self.target_utilization else {
            return;
        };
        let work: u128 = procs
            .iter()
            .zip(runtimes.iter())
            .map(|(p, r)| u128::from(*p) * u128::from(*r))
            .sum();
        if work == 0 {
            return;
        }
        let capacity = u128::from(self.max_procs) * u128::from(self.span.as_secs());
        let factor = target * capacity as f64 / work as f64;
        for r in runtimes.iter_mut() {
            let scaled = (*r as f64 * factor).round().max(1.0);
            // Keep runtimes within a sane ceiling (a week) so one job
            // cannot dwarf the trace span.
            *r = (scaled as u64).min(7 * 86_400);
        }
    }

    /// Derive `(runtime, walltime)` from a calibrated runtime, applying
    /// over-estimation, kills and instant failures.
    fn sample_walltime(&self, runtime: u64, rng: &mut SimRng) -> (u64, u64) {
        let w = &self.walltime;
        if rng.gen_bool(w.p_instant_failure) {
            // Crashed right away; user had asked for a normal slot.
            let runtime = rng.gen_range(0..=30);
            let walltime = w.round_values[rng.gen_range(0..w.round_values.len().min(4))];
            return (runtime, walltime.max(runtime.max(1)));
        }
        if rng.gen_bool(w.p_killed) {
            // Overran the estimate: the batch system kills it at the
            // walltime; the trace's recorded runtime exceeds the request.
            let walltime = ((runtime as f64) * rng.gen_range(0.5..0.95))
                .round()
                .max(1.0) as u64;
            return (runtime.max(walltime + 1), walltime);
        }
        let weights: Vec<f64> = w.factor_classes.iter().map(|c| c.0).collect();
        let (_, lo, hi) = w.factor_classes[rng.weighted_index(&weights)];
        let raw = (runtime as f64 * rng.gen_range(lo..hi)).ceil() as u64;
        let rounded = w
            .round_values
            .iter()
            .copied()
            .find(|v| *v >= raw)
            .unwrap_or_else(|| raw.div_ceil(3_600).max(1) * 3_600);
        (runtime, rounded.max(runtime.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(spec: &SiteWorkloadSpec, seed: u64) -> Vec<JobSpec> {
        let mut rng = SimRng::seed_from_u64(seed);
        spec.generate(&mut rng)
    }

    #[test]
    fn generates_exact_count() {
        let spec = SiteWorkloadSpec::new(500, 128, Duration::days(7));
        assert_eq!(gen(&spec, 1).len(), 500);
    }

    #[test]
    fn deterministic_for_equal_seed() {
        let spec = SiteWorkloadSpec::new(200, 64, Duration::days(3));
        assert_eq!(gen(&spec, 7), gen(&spec, 7));
    }

    #[test]
    fn different_seed_differs() {
        let spec = SiteWorkloadSpec::new(200, 64, Duration::days(3));
        assert_ne!(gen(&spec, 7), gen(&spec, 8));
    }

    #[test]
    fn arrivals_sorted_and_within_span() {
        let spec = SiteWorkloadSpec::new(1_000, 64, Duration::days(7));
        let jobs = gen(&spec, 3);
        let span = spec.span.as_secs();
        let mut prev = SimTime::ZERO;
        for j in &jobs {
            assert!(j.submit >= prev, "arrivals must be sorted");
            assert!(j.submit.as_secs() < span, "arrival beyond span");
            prev = j.submit;
        }
    }

    #[test]
    fn sizes_bounded_by_site() {
        let spec = SiteWorkloadSpec::new(2_000, 100, Duration::days(7));
        for j in gen(&spec, 5) {
            assert!(
                j.procs >= 1 && j.procs <= 100,
                "procs {} out of range",
                j.procs
            );
        }
    }

    #[test]
    fn serial_jobs_are_common() {
        let spec = SiteWorkloadSpec::new(2_000, 128, Duration::days(7));
        let serial = gen(&spec, 11).iter().filter(|j| j.procs == 1).count();
        assert!(
            (400..1200).contains(&serial),
            "~35% serial expected, got {serial}/2000"
        );
    }

    #[test]
    fn most_walltimes_overestimate() {
        let spec = SiteWorkloadSpec::new(2_000, 128, Duration::days(7));
        let jobs = gen(&spec, 13);
        let over = jobs
            .iter()
            .filter(|j| j.walltime_ref > j.runtime_ref)
            .count();
        assert!(over > 1_700, "overestimation should dominate, got {over}");
    }

    #[test]
    fn some_jobs_are_killed() {
        let spec = SiteWorkloadSpec::new(4_000, 128, Duration::days(7));
        let killed = gen(&spec, 17).iter().filter(|j| j.is_killed()).count();
        // p_killed = 3% plus instant failures that happen to tie; expect
        // roughly 80-200 out of 4000.
        assert!((40..400).contains(&killed), "killed={killed}");
    }

    #[test]
    fn utilization_calibration_hits_target() {
        let span = Duration::days(7);
        let spec = SiteWorkloadSpec::new(3_000, 128, span).with_utilization(0.7);
        let jobs = gen(&spec, 19);
        let work: u128 = jobs
            .iter()
            .map(|j| u128::from(j.procs) * u128::from(j.runtime_ref.as_secs()))
            .sum();
        let cap = 128u128 * u128::from(span.as_secs());
        let util = work as f64 / cap as f64;
        // Rounding, the runtime ceiling and kill adjustments blur it a bit.
        assert!((0.55..0.85).contains(&util), "util={util}");
    }

    #[test]
    fn higher_target_means_more_work() {
        let span = Duration::days(7);
        let lo = SiteWorkloadSpec::new(1_000, 128, span).with_utilization(0.3);
        let hi = SiteWorkloadSpec::new(1_000, 128, span).with_utilization(0.9);
        let work = |jobs: &[JobSpec]| -> u128 {
            jobs.iter()
                .map(|j| u128::from(j.procs) * u128::from(j.runtime_ref.as_secs()))
                .sum()
        };
        assert!(work(&gen(&hi, 23)) > 2 * work(&gen(&lo, 23)));
    }

    #[test]
    fn walltimes_are_round_or_hourly() {
        let spec = SiteWorkloadSpec::new(2_000, 128, Duration::days(7));
        let round = WalltimeSpec::default().round_values;
        for j in gen(&spec, 29) {
            if j.is_killed() {
                continue; // killed jobs keep their (tight) walltime
            }
            let w = j.walltime_ref.as_secs();
            assert!(
                round.contains(&w) || w % 3_600 == 0,
                "walltime {w} is not a round value"
            );
        }
    }

    #[test]
    fn daytime_arrivals_dominate() {
        let spec = SiteWorkloadSpec {
            arrival: ArrivalSpec {
                n_bursts: 0,
                ..ArrivalSpec::default()
            },
            ..SiteWorkloadSpec::new(5_000, 64, Duration::days(7))
        };
        let jobs = gen(&spec, 31);
        let day = jobs
            .iter()
            .filter(|j| {
                let hod = (j.submit.as_secs() % 86_400) / 3_600;
                (9..19).contains(&hod)
            })
            .count();
        // 10 of 24 hours carry well over half the arrivals.
        assert!(
            day as f64 / 5_000.0 > 0.5,
            "day fraction {}",
            day as f64 / 5_000.0
        );
    }

    #[test]
    fn bursts_concentrate_arrivals() {
        let base = SiteWorkloadSpec {
            arrival: ArrivalSpec {
                n_bursts: 0,
                ..ArrivalSpec::default()
            },
            ..SiteWorkloadSpec::new(5_000, 64, Duration::days(30))
        };
        let bursty = SiteWorkloadSpec {
            arrival: ArrivalSpec {
                n_bursts: 12,
                burst_weight: 60.0,
                ..ArrivalSpec::default()
            },
            ..base.clone()
        };
        // Measure the maximum number of arrivals in any single hour.
        let max_hourly = |jobs: &[JobSpec]| -> usize {
            let mut counts = std::collections::HashMap::new();
            for j in jobs {
                *counts.entry(j.submit.as_secs() / 3_600).or_insert(0usize) += 1;
            }
            counts.values().copied().max().unwrap_or(0)
        };
        let m_base = max_hourly(&gen(&base, 37));
        let m_bursty = max_hourly(&gen(&bursty, 37));
        assert!(
            m_bursty > 2 * m_base,
            "bursts must concentrate arrivals: {m_bursty} vs {m_base}"
        );
    }

    #[test]
    fn tiny_site_generates_valid_buckets() {
        // SizeSpec::for_site must not create inverted buckets on small
        // sites.
        for max in [1u32, 2, 8, 9, 32, 33, 128, 129, 640] {
            let spec = SiteWorkloadSpec::new(200, max, Duration::days(2));
            for j in gen(&spec, 41) {
                assert!(j.procs <= max);
            }
        }
    }
}
