//! Preset scenarios matching the paper's §3.3.
//!
//! Seven scenarios: six one-month traces (January–June 2008, Grid'5000
//! Bordeaux + Lyon + Toulouse) whose per-site job counts reproduce the
//! paper's **Table 1** exactly, plus the six-month `pwa-g5k` scenario
//! (Bordeaux 74 647 jobs, CTC 42 873, SDSC 15 615 — 133 135 total).
//!
//! Monthly *load levels* are a calibration input (the real logs are not
//! available): they are chosen so the relative pressure ordering matches
//! what the paper's results imply — April is by far the most loaded month
//! (its impacted-jobs percentages dominate Table 2), January the least.

use grid_batch::JobSpec;
use grid_des::{Duration, SimRng};

use crate::model::SiteWorkloadSpec;
use crate::swf::merge_traces;

/// One of the paper's seven experiment scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scenario {
    /// January 2008 (31 days).
    Jan,
    /// February 2008 (29 days — leap year).
    Feb,
    /// March 2008 (31 days).
    Mar,
    /// April 2008 (30 days).
    Apr,
    /// May 2008 (31 days).
    May,
    /// June 2008 (30 days).
    Jun,
    /// Six-month mixed Grid'5000 + Parallel Workload Archive scenario.
    PwaG5k,
}

impl Scenario {
    /// All seven scenarios in paper column order.
    pub const ALL: [Scenario; 7] = [
        Scenario::Jan,
        Scenario::Feb,
        Scenario::Mar,
        Scenario::Apr,
        Scenario::May,
        Scenario::Jun,
        Scenario::PwaG5k,
    ];

    /// Column label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Jan => "jan",
            Scenario::Feb => "feb",
            Scenario::Mar => "mar",
            Scenario::Apr => "apr",
            Scenario::May => "may",
            Scenario::Jun => "jun",
            Scenario::PwaG5k => "pwa-g5k",
        }
    }

    /// Trace length.
    pub fn span(self) -> Duration {
        match self {
            Scenario::Jan | Scenario::Mar | Scenario::May => Duration::days(31),
            Scenario::Feb => Duration::days(29),
            Scenario::Apr | Scenario::Jun => Duration::days(30),
            // Jan..Jun 2008 inclusive: 31+29+31+30+31+30.
            Scenario::PwaG5k => Duration::days(182),
        }
    }

    /// Per-site job counts (paper Table 1 / §3.3).
    ///
    /// Months: `[Bordeaux, Lyon, Toulouse]`; `pwa-g5k`:
    /// `[Bordeaux, CTC, SDSC]`.
    pub fn site_counts(self) -> [usize; 3] {
        match self {
            Scenario::Jan => [13_084, 583, 488],
            Scenario::Feb => [5_822, 2_695, 1_123],
            Scenario::Mar => [11_673, 8_315, 949],
            Scenario::Apr => [33_250, 1_330, 1_461],
            Scenario::May => [6_765, 2_179, 1_573],
            Scenario::Jun => [4_094, 3_540, 1_548],
            Scenario::PwaG5k => [74_647, 42_873, 15_615],
        }
    }

    /// Total jobs (Table 1's "Total" column).
    pub fn total_jobs(self) -> usize {
        self.site_counts().iter().sum()
    }

    /// Per-site processor counts of the platform this scenario runs on.
    pub fn site_procs(self) -> [u32; 3] {
        match self {
            Scenario::PwaG5k => [640, 430, 128],
            _ => [640, 270, 434],
        }
    }

    /// Calibrated per-site utilization targets (see module docs).
    pub fn site_utilization(self) -> [f64; 3] {
        match self {
            Scenario::Jan => [0.32, 0.25, 0.25],
            Scenario::Feb => [0.55, 0.50, 0.45],
            Scenario::Mar => [0.72, 0.65, 0.55],
            Scenario::Apr => [0.97, 0.60, 0.60],
            Scenario::May => [0.68, 0.60, 0.55],
            Scenario::Jun => [0.62, 0.62, 0.55],
            Scenario::PwaG5k => [0.72, 0.68, 0.62],
        }
    }

    /// Burst count scaled to the span (≈ 2 bursts/week, like the defaults).
    fn n_bursts(self) -> usize {
        (self.span().as_secs() / Duration::days(7).as_secs()).max(1) as usize * 2
    }

    /// Generate the scenario's merged arrival stream.
    ///
    /// The result is deterministic in `(self, seed)`: per-site streams are
    /// derived independently, so the Bordeaux trace of `Jan` does not
    /// change if Lyon's parameters do.
    pub fn generate(self, seed: u64) -> Vec<JobSpec> {
        self.generate_fraction(seed, 1.0)
    }

    /// Like [`Scenario::generate`], with per-site job counts scaled by
    /// `frac` (clamped to at least 20 jobs per site). The utilization
    /// calibration is count-independent, so a scaled trace exercises the
    /// same load level with fewer jobs — ideal for tests and quick benches.
    ///
    /// # Panics
    /// Panics unless `0 < frac <= 1`.
    pub fn generate_fraction(self, seed: u64, frac: f64) -> Vec<JobSpec> {
        assert!(frac > 0.0 && frac <= 1.0, "frac must be in (0, 1]");
        let counts = self.site_counts();
        let procs = self.site_procs();
        let utils = self.site_utilization();
        let span = self.span();
        let mut traces = Vec::with_capacity(3);
        for site in 0..3 {
            let n = ((counts[site] as f64 * frac) as usize).max(20);
            let mut spec =
                SiteWorkloadSpec::new(n, procs[site], span).with_utilization(utils[site]);
            spec.arrival.n_bursts = self.n_bursts();
            // Stream id mixes the scenario so e.g. Jan/site0 differs from
            // Feb/site0 even with the same seed.
            let stream = (self as u64) * 16 + site as u64;
            let mut rng = SimRng::derive(seed, stream);
            traces.push(spec.generate(&mut rng));
        }
        merge_traces(traces)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_match_paper() {
        assert_eq!(Scenario::Jan.total_jobs(), 14_155);
        assert_eq!(Scenario::Feb.total_jobs(), 9_640);
        assert_eq!(Scenario::Mar.total_jobs(), 20_937);
        assert_eq!(Scenario::Apr.total_jobs(), 36_041);
        assert_eq!(Scenario::May.total_jobs(), 10_517);
        assert_eq!(Scenario::Jun.total_jobs(), 9_182);
        assert_eq!(Scenario::PwaG5k.total_jobs(), 133_135);
    }

    #[test]
    fn generated_counts_match_table1() {
        for sc in [Scenario::Jan, Scenario::Jun] {
            let jobs = sc.generate(42);
            assert_eq!(jobs.len(), sc.total_jobs());
            for (site, expected) in sc.site_counts().into_iter().enumerate() {
                let n = jobs.iter().filter(|j| j.origin_site == site as u32).count();
                assert_eq!(n, expected, "{sc} site {site}");
            }
        }
    }

    #[test]
    fn jobs_fit_their_origin_site() {
        let jobs = Scenario::Feb.generate(42);
        let procs = Scenario::Feb.site_procs();
        for j in &jobs {
            assert!(j.procs <= procs[j.origin_site as usize]);
        }
    }

    #[test]
    fn pwa_scenario_uses_platform2_sizes() {
        let jobs = Scenario::PwaG5k.generate(1);
        // SDSC jobs are bounded by 128 processors.
        assert!(jobs
            .iter()
            .filter(|j| j.origin_site == 2)
            .all(|j| j.procs <= 128));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(Scenario::May.generate(7), Scenario::May.generate(7));
        assert_ne!(Scenario::May.generate(7), Scenario::May.generate(8));
    }

    #[test]
    fn scenarios_differ_with_same_seed() {
        assert_ne!(Scenario::Jan.generate(7), Scenario::Feb.generate(7));
    }

    #[test]
    fn ids_are_sequential_in_arrival_order() {
        let jobs = Scenario::Jun.generate(3);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id.0, i as u64);
        }
        for w in jobs.windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
    }

    #[test]
    fn april_is_most_loaded_month() {
        // Calibration sanity: total work in April exceeds January's by a
        // large factor (the driver of the paper's month differences).
        let work = |sc: Scenario| -> u128 {
            sc.generate(42)
                .iter()
                .map(|j| u128::from(j.procs) * u128::from(j.runtime_ref.as_secs()))
                .sum()
        };
        let apr = work(Scenario::Apr);
        let jan = work(Scenario::Jan);
        assert!(apr > 2 * jan, "apr={apr} jan={jan}");
    }

    #[test]
    fn labels_are_paper_columns() {
        let labels: Vec<&str> = Scenario::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["jan", "feb", "mar", "apr", "may", "jun", "pwa-g5k"]
        );
    }
}
