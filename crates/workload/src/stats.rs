//! Summary statistics over a trace (calibration checks, Table 1).

use grid_batch::JobSpec;
use grid_des::Duration;

/// Descriptive statistics of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// Number of jobs.
    pub n_jobs: usize,
    /// Per-origin-site job counts (indices beyond the largest origin are
    /// absent).
    pub per_site: Vec<usize>,
    /// Total work: `Σ procs × runtime` core-seconds (reference speed).
    pub total_work: u128,
    /// Mean processors per job.
    pub mean_procs: f64,
    /// Mean runtime, seconds.
    pub mean_runtime: f64,
    /// Mean walltime-over-runtime factor among non-killed jobs with
    /// positive runtime.
    pub mean_overestimation: f64,
    /// Jobs whose runtime reaches their walltime (killed).
    pub killed: usize,
    /// Time between the first and last submission.
    pub submit_span: Duration,
}

impl WorkloadStats {
    /// Compute statistics for `jobs`.
    pub fn compute(jobs: &[JobSpec]) -> WorkloadStats {
        let n_jobs = jobs.len();
        let mut per_site: Vec<usize> = Vec::new();
        let mut total_work: u128 = 0;
        let mut sum_procs: u128 = 0;
        let mut sum_runtime: u128 = 0;
        let mut killed = 0usize;
        let mut over_sum = 0.0f64;
        let mut over_n = 0usize;
        for j in jobs {
            let site = j.origin_site as usize;
            if per_site.len() <= site {
                per_site.resize(site + 1, 0);
            }
            per_site[site] += 1;
            total_work += u128::from(j.procs) * u128::from(j.runtime_ref.as_secs());
            sum_procs += u128::from(j.procs);
            sum_runtime += u128::from(j.runtime_ref.as_secs());
            if j.is_killed() {
                killed += 1;
            } else if j.runtime_ref.as_secs() > 0 {
                over_sum += j.walltime_ref.as_secs() as f64 / j.runtime_ref.as_secs() as f64;
                over_n += 1;
            }
        }
        let submit_span = match (
            jobs.iter().map(|j| j.submit).min(),
            jobs.iter().map(|j| j.submit).max(),
        ) {
            (Some(lo), Some(hi)) => hi.since(lo),
            _ => Duration::ZERO,
        };
        WorkloadStats {
            n_jobs,
            per_site,
            total_work,
            mean_procs: if n_jobs == 0 {
                0.0
            } else {
                sum_procs as f64 / n_jobs as f64
            },
            mean_runtime: if n_jobs == 0 {
                0.0
            } else {
                sum_runtime as f64 / n_jobs as f64
            },
            mean_overestimation: if over_n == 0 {
                0.0
            } else {
                over_sum / over_n as f64
            },
            killed,
            submit_span,
        }
    }

    /// Offered utilization against a machine of `procs` processors over
    /// `span`: `total_work / (procs × span)`.
    pub fn utilization(&self, procs: u32, span: Duration) -> f64 {
        let cap = u128::from(procs) * u128::from(span.as_secs());
        if cap == 0 {
            return 0.0;
        }
        self.total_work as f64 / cap as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_basic_aggregates() {
        let jobs = vec![
            JobSpec::new(0, 0, 2, 100, 200),
            JobSpec::new(1, 50, 4, 50, 50).with_origin(1), // killed
        ];
        let s = WorkloadStats::compute(&jobs);
        assert_eq!(s.n_jobs, 2);
        assert_eq!(s.per_site, vec![1, 1]);
        assert_eq!(s.total_work, 2 * 100 + 4 * 50);
        assert_eq!(s.mean_procs, 3.0);
        assert_eq!(s.mean_runtime, 75.0);
        assert_eq!(s.killed, 1);
        assert_eq!(s.mean_overestimation, 2.0);
        assert_eq!(s.submit_span, Duration(50));
    }

    #[test]
    fn utilization_math() {
        let jobs = vec![JobSpec::new(0, 0, 10, 100, 100)];
        let s = WorkloadStats::compute(&jobs);
        // 1000 core-secs over 10 procs × 200 s = 0.5.
        assert!((s.utilization(10, Duration(200)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let s = WorkloadStats::compute(&[]);
        assert_eq!(s.n_jobs, 0);
        assert_eq!(s.mean_procs, 0.0);
        assert_eq!(s.utilization(10, Duration(100)), 0.0);
    }
}
