//! Standard Workload Format (SWF) input/output.
//!
//! SWF is the Parallel Workload Archive's 18-field line format (Feitelson
//! et al.). The paper takes CTC and SDSC logs "in their standard original
//! format" — including the "bad" jobs the cleaned versions remove — so this
//! parser is deliberately forgiving: missing walltimes fall back to the
//! runtime, negative runtimes (failed jobs) clamp to zero, and jobs with no
//! processor count are skipped with a report rather than an abort.
//!
//! Field map (1-based, per the PWA definition):
//!
//! | # | Field | Use here |
//! |---|-------|----------|
//! | 1 | job number | id (re-assigned on merge) |
//! | 2 | submit time | [`JobSpec::submit`] |
//! | 4 | run time | [`JobSpec::runtime_ref`] |
//! | 5 | allocated processors | fallback for procs |
//! | 8 | requested processors | [`JobSpec::procs`] |
//! | 9 | requested time | [`JobSpec::walltime_ref`] |
//!
//! All other fields are preserved on a best-effort basis when writing.

use grid_batch::{JobId, JobSpec};
use grid_des::{Duration, SimTime};

/// Outcome of parsing one SWF document.
#[derive(Debug, Clone, Default)]
pub struct SwfParse {
    /// Parsed jobs, in file order.
    pub jobs: Vec<JobSpec>,
    /// Header comment lines (starting with `;`), without the prefix.
    pub comments: Vec<String>,
    /// Lines skipped because no processor count was derivable, with the
    /// 1-based line number.
    pub skipped: Vec<(usize, String)>,
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

/// Parse an SWF document from a string.
///
/// Malformed numeric fields are an error; structurally valid lines whose
/// job cannot run anywhere (zero processors) are collected in
/// [`SwfParse::skipped`].
pub fn parse(input: &str) -> Result<SwfParse, SwfError> {
    let mut out = SwfParse::default();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix(';') {
            out.comments.push(comment.trim().to_string());
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 9 {
            return Err(SwfError {
                line: n,
                message: format!("expected >= 9 fields, found {}", fields.len()),
            });
        }
        let geti = |idx: usize| -> Result<i64, SwfError> {
            fields[idx].parse::<i64>().map_err(|e| SwfError {
                line: n,
                message: format!("field {} ({:?}): {e}", idx + 1, fields[idx]),
            })
        };
        let id = geti(0)?;
        let submit = geti(1)?.max(0) as u64;
        let runtime = geti(3)?.max(0) as u64;
        let alloc_procs = geti(4)?;
        let req_procs = geti(7)?;
        let req_time = geti(8)?;
        let procs = if req_procs > 0 {
            req_procs as u32
        } else if alloc_procs > 0 {
            alloc_procs as u32
        } else {
            out.skipped.push((n, raw.to_string()));
            continue;
        };
        // Walltime falls back to the runtime (at least 1 s) when the log
        // carries no request; that reproduces how simulators replay such
        // entries.
        let walltime = if req_time > 0 {
            req_time as u64
        } else {
            runtime.max(1)
        };
        out.jobs.push(JobSpec {
            id: JobId(id.max(0) as u64),
            submit: SimTime(submit),
            procs,
            runtime_ref: Duration(runtime),
            walltime_ref: Duration(walltime),
            origin_site: 0,
        });
    }
    Ok(out)
}

/// Serialize jobs to SWF. Unknown fields are written as `-1`, per the PWA
/// convention; `status` (field 11) is 1 (completed) or 0 (killed /
/// failed) depending on the kill rule.
pub fn write(jobs: &[JobSpec], comments: &[String]) -> String {
    let mut s = String::with_capacity(jobs.len() * 64 + 128);
    for c in comments {
        s.push_str("; ");
        s.push_str(c);
        s.push('\n');
    }
    for j in jobs {
        let status = if j.is_killed() { 0 } else { 1 };
        // 18 fields.
        s.push_str(&format!(
            "{} {} -1 {} {} -1 -1 {} {} -1 {} -1 -1 -1 -1 -1 -1 -1\n",
            j.id.0,
            j.submit.as_secs(),
            j.runtime_ref.as_secs(),
            j.procs,
            j.procs,
            j.walltime_ref.as_secs(),
            status,
        ));
    }
    s
}

/// Merge several site traces into one grid arrival stream: jobs are sorted
/// by submission time (stable within a site, site-index tie-break) and
/// re-identified `0..n` in arrival order. Each job's `origin_site` is set
/// to its trace's index.
pub fn merge_traces(traces: Vec<Vec<JobSpec>>) -> Vec<JobSpec> {
    let mut all: Vec<JobSpec> = Vec::with_capacity(traces.iter().map(Vec::len).sum());
    for (site, trace) in traces.into_iter().enumerate() {
        for job in trace {
            all.push(job.with_origin(site as u32));
        }
    }
    // Stable sort keeps intra-site order; tie-break across sites by origin
    // then original id for full determinism.
    all.sort_by_key(|j| (j.submit, j.origin_site, j.id));
    for (i, job) in all.iter_mut().enumerate() {
        job.id = JobId(i as u64);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2.2
; Computer: Test SP2
1 0 10 3600 16 -1 -1 16 7200 -1 1 1 1 -1 1 -1 -1 -1
2 60 -1 100 8 -1 -1 -1 -1 -1 1 1 1 -1 1 -1 -1 -1
3 120 0 -5 0 -1 -1 0 600 -1 0 1 1 -1 1 -1 -1 -1
";

    #[test]
    fn parses_ordinary_job() {
        let p = parse(SAMPLE).unwrap();
        let j = &p.jobs[0];
        assert_eq!(j.id, JobId(1));
        assert_eq!(j.submit, SimTime(0));
        assert_eq!(j.procs, 16);
        assert_eq!(j.runtime_ref, Duration(3600));
        assert_eq!(j.walltime_ref, Duration(7200));
    }

    #[test]
    fn missing_request_falls_back_to_allocation_and_runtime() {
        let p = parse(SAMPLE).unwrap();
        let j = &p.jobs[1];
        assert_eq!(j.procs, 8, "allocated procs used when request missing");
        assert_eq!(
            j.walltime_ref,
            Duration(100),
            "walltime falls back to runtime"
        );
    }

    #[test]
    fn zero_proc_line_is_skipped_not_fatal() {
        let p = parse(SAMPLE).unwrap();
        assert_eq!(p.jobs.len(), 2);
        assert_eq!(p.skipped.len(), 1);
        assert_eq!(p.skipped[0].0, 5); // 1-based line number
    }

    #[test]
    fn comments_collected() {
        let p = parse(SAMPLE).unwrap();
        assert_eq!(p.comments.len(), 2);
        assert!(p.comments[0].starts_with("Version"));
    }

    #[test]
    fn negative_runtime_clamps_to_zero() {
        let p = parse("7 5 0 -3 4 -1 -1 4 100 -1 1 1 1 -1 1 -1 -1 -1\n").unwrap();
        assert_eq!(p.jobs[0].runtime_ref, Duration(0));
    }

    #[test]
    fn short_line_is_an_error() {
        let err = parse("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("fields"));
    }

    #[test]
    fn garbage_field_is_an_error() {
        let err = parse("1 x 10 3600 16 -1 -1 16 7200\n").unwrap_err();
        assert!(err.message.contains("field 2"));
    }

    #[test]
    fn roundtrip_preserves_scheduling_fields() {
        let jobs = vec![
            JobSpec::new(1, 0, 16, 3600, 7200),
            JobSpec::new(2, 60, 8, 100, 100), // killed (runtime == walltime)
        ];
        let text = write(&jobs, &["generated".into()]);
        let p = parse(&text).unwrap();
        assert_eq!(p.jobs.len(), 2);
        for (a, b) in jobs.iter().zip(&p.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.procs, b.procs);
            assert_eq!(a.runtime_ref, b.runtime_ref);
            assert_eq!(a.walltime_ref, b.walltime_ref);
        }
        assert_eq!(p.comments, vec!["generated".to_string()]);
    }

    #[test]
    fn merge_orders_by_submit_and_reassigns_ids() {
        let a = vec![
            JobSpec::new(100, 50, 1, 1, 1),
            JobSpec::new(101, 150, 1, 1, 1),
        ];
        let b = vec![JobSpec::new(200, 100, 1, 1, 1)];
        let merged = merge_traces(vec![a, b]);
        assert_eq!(merged.len(), 3);
        assert_eq!(
            merged
                .iter()
                .map(|j| j.submit.as_secs())
                .collect::<Vec<_>>(),
            vec![50, 100, 150]
        );
        assert_eq!(
            merged.iter().map(|j| j.id.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(
            merged.iter().map(|j| j.origin_site).collect::<Vec<_>>(),
            vec![0, 1, 0]
        );
    }

    #[test]
    fn merge_tie_breaks_deterministically() {
        let a = vec![JobSpec::new(0, 100, 1, 1, 1)];
        let b = vec![JobSpec::new(0, 100, 2, 2, 2)];
        let m1 = merge_traces(vec![a.clone(), b.clone()]);
        let m2 = merge_traces(vec![a, b]);
        assert_eq!(m1[0].procs, m2[0].procs);
        assert_eq!(m1[0].origin_site, 0, "site 0 wins ties");
    }
}
