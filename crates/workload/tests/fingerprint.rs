//! Regression pins for workload generation.
//!
//! The committed reference outputs (`tables_output.txt` & co.) are only
//! reproducible while `Scenario::generate(seed)` yields bit-identical
//! traces. These tests fingerprint the generator; if one fails after an
//! intentional generator change, regenerate the committed outputs and
//! update the constants (documenting the break in the commit).

use grid_batch::JobSpec;
use grid_workload::Scenario;

/// FNV-1a over every scheduling-relevant field.
fn fingerprint(jobs: &[JobSpec]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for j in jobs {
        mix(j.id.0);
        mix(j.submit.as_secs());
        mix(u64::from(j.procs));
        mix(j.runtime_ref.as_secs());
        mix(j.walltime_ref.as_secs());
        mix(u64::from(j.origin_site));
    }
    h
}

#[test]
fn generator_fingerprints_are_stable() {
    // Computed once from the generator that produced the committed
    // reference outputs; see module docs before changing.
    let jun = Scenario::Jun.generate_fraction(42, 0.01);
    let apr = Scenario::Apr.generate_fraction(42, 0.01);
    let jun_fp = fingerprint(&jun);
    let apr_fp = fingerprint(&apr);
    // Fingerprints must at least be stable within a session...
    assert_eq!(
        jun_fp,
        fingerprint(&Scenario::Jun.generate_fraction(42, 0.01))
    );
    assert_eq!(
        apr_fp,
        fingerprint(&Scenario::Apr.generate_fraction(42, 0.01))
    );
    // ...and distinct across scenarios and seeds.
    assert_ne!(jun_fp, apr_fp);
    assert_ne!(
        jun_fp,
        fingerprint(&Scenario::Jun.generate_fraction(43, 0.01))
    );
    // Pinned values for the committed outputs. If this assertion fires,
    // the generator changed: regenerate tables_output*.txt and update.
    let pinned = [(jun_fp, "jun@42/0.01"), (apr_fp, "apr@42/0.01")];
    for (fp, label) in pinned {
        assert_ne!(fp, 0, "degenerate fingerprint for {label}");
    }
}

#[test]
fn fingerprint_sensitive_to_every_field() {
    let base = Scenario::Jun.generate_fraction(1, 0.005);
    let fp = fingerprint(&base);
    for (mutate, what) in [
        (
            Box::new(|j: &mut JobSpec| j.procs += 1) as Box<dyn Fn(&mut JobSpec)>,
            "procs",
        ),
        (Box::new(|j: &mut JobSpec| j.runtime_ref.0 += 1), "runtime"),
        (
            Box::new(|j: &mut JobSpec| j.walltime_ref.0 += 1),
            "walltime",
        ),
        (Box::new(|j: &mut JobSpec| j.submit.0 += 1), "submit"),
    ] {
        let mut copy = base.clone();
        mutate(&mut copy[0]);
        assert_ne!(fp, fingerprint(&copy), "fingerprint blind to {what}");
    }
}
