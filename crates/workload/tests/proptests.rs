//! Property-based tests for trace generation and SWF round-tripping.

use grid_batch::{JobId, JobSpec};
use grid_des::{Duration, SimRng, SimTime};
use grid_workload::model::SiteWorkloadSpec;
use grid_workload::swf;
use proptest::prelude::*;

fn arb_jobs() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (0u64..1 << 40, 1u32..4_096, 0u64..1 << 30, 1u64..1 << 30),
        0..100,
    )
    .prop_map(|raw| {
        raw.iter()
            .enumerate()
            .map(|(i, &(submit, procs, rt, wt))| JobSpec {
                id: JobId(i as u64),
                submit: SimTime(submit),
                procs,
                runtime_ref: Duration(rt),
                walltime_ref: Duration(wt),
                origin_site: 0,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SWF write -> parse preserves every scheduling-relevant field.
    #[test]
    fn swf_roundtrip(jobs in arb_jobs()) {
        let text = swf::write(&jobs, &["prop".into()]);
        let parsed = swf::parse(&text).unwrap();
        prop_assert_eq!(parsed.jobs.len(), jobs.len());
        for (a, b) in jobs.iter().zip(&parsed.jobs) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.submit, b.submit);
            prop_assert_eq!(a.procs, b.procs);
            prop_assert_eq!(a.runtime_ref, b.runtime_ref);
            prop_assert_eq!(a.walltime_ref, b.walltime_ref);
        }
    }

    /// merge_traces: output is sorted, ids are 0..n, and multiset of
    /// (submit, procs, runtime) is preserved.
    #[test]
    fn merge_preserves_jobs(
        a in arb_jobs(),
        b in arb_jobs(),
        c in arb_jobs(),
    ) {
        let (na, nb, nc) = (a.len(), b.len(), c.len());
        let merged = swf::merge_traces(vec![a.clone(), b.clone(), c.clone()]);
        prop_assert_eq!(merged.len(), na + nb + nc);
        for w in merged.windows(2) {
            prop_assert!(w[0].submit <= w[1].submit);
        }
        for (i, j) in merged.iter().enumerate() {
            prop_assert_eq!(j.id, JobId(i as u64));
        }
        let mut key_in: Vec<(u64, u32, u64)> = a
            .iter()
            .chain(&b)
            .chain(&c)
            .map(|j| (j.submit.as_secs(), j.procs, j.runtime_ref.as_secs()))
            .collect();
        let mut key_out: Vec<(u64, u32, u64)> = merged
            .iter()
            .map(|j| (j.submit.as_secs(), j.procs, j.runtime_ref.as_secs()))
            .collect();
        key_in.sort_unstable();
        key_out.sort_unstable();
        prop_assert_eq!(key_in, key_out);
    }

    /// The generator always produces jobs that fit their site and have
    /// positive walltimes within the trace span, for arbitrary parameters.
    #[test]
    fn generator_respects_bounds(
        n in 1usize..400,
        max_procs in 1u32..512,
        days in 1u64..20,
        util in 0.05f64..1.5,
        seed in any::<u64>(),
    ) {
        let spec = SiteWorkloadSpec::new(n, max_procs, Duration::days(days))
            .with_utilization(util);
        let mut rng = SimRng::seed_from_u64(seed);
        let jobs = spec.generate(&mut rng);
        prop_assert_eq!(jobs.len(), n);
        for j in &jobs {
            prop_assert!(j.procs >= 1 && j.procs <= max_procs);
            prop_assert!(j.walltime_ref >= Duration(1));
            prop_assert!(j.submit.as_secs() < days * 86_400);
        }
        // Sorted by submission.
        for w in jobs.windows(2) {
            prop_assert!(w[0].submit <= w[1].submit);
        }
    }

    /// Utilization calibration lands within a factor ~2 of the target for
    /// reasonably sized traces (rounding, caps and kill rewrites blur it).
    #[test]
    fn calibration_is_roughly_right(
        util in 0.2f64..1.0,
        seed in any::<u64>(),
    ) {
        let span = Duration::days(10);
        let spec = SiteWorkloadSpec::new(1_500, 128, span).with_utilization(util);
        let mut rng = SimRng::seed_from_u64(seed);
        let jobs = spec.generate(&mut rng);
        let work: u128 = jobs
            .iter()
            .map(|j| u128::from(j.procs) * u128::from(j.runtime_ref.as_secs()))
            .sum();
        let cap = 128u128 * u128::from(span.as_secs());
        let measured = work as f64 / cap as f64;
        prop_assert!(
            measured > util * 0.5 && measured < util * 2.0,
            "target {util}, measured {measured}"
        );
    }
}
