//! Ablation A7 as a standalone example: FCFS vs conservative (CBF) vs
//! aggressive (EASY) back-filling, with and without task reallocation.
//!
//! The paper evaluates FCFS and CBF; its related work reports conservative
//! back-filling superior to aggressive in multi-site settings (§5). This
//! example checks whether that still holds once the reallocation mechanism
//! is active.
//!
//! ```text
//! cargo run --release --example backfill_comparison -- [fraction]
//! ```

use caniou_realloc::prelude::*;
use caniou_realloc::realloc::ablation::backfill_ablation;
use caniou_realloc::realloc::experiments::SuiteConfig;

fn main() {
    let fraction: f64 = std::env::args()
        .nth(1)
        .map_or(0.05, |s| s.parse().expect("bad fraction"));
    let suite = SuiteConfig {
        fraction,
        ..SuiteConfig::default()
    };
    println!("March scenario at fraction {fraction}, heterogeneous platform, Algorithm 1 / MCT");
    println!(
        "{:>6} {:>16} {:>16} {:>10}",
        "policy", "base resp (s)", "realloc resp (s)", "reallocs"
    );
    for p in backfill_ablation(
        Scenario::Mar,
        true,
        ReallocConfig::new(ReallocAlgorithm::NoCancel, Heuristic::Mct),
        &suite,
    ) {
        println!(
            "{:>6} {:>16.0} {:>16.0} {:>10}",
            p.policy.to_string(),
            p.mean_response_no_realloc,
            p.mean_response_realloc,
            p.reallocations
        );
    }
    println!();
    println!(
        "Expected shape: both back-filling flavours beat plain FCFS; EASY trails CBF on mean \
         response when large jobs matter; reallocation narrows the FCFS gap substantially."
    );
}
