//! Regenerate the paper's Figure 1 ("Example of reallocation between two
//! clusters") from an actual pair of simulations.
//!
//! ```text
//! cargo run --release --example figure1_gantt
//! ```

fn main() {
    print!("{}", caniou_realloc::realloc::figures::figure1());
}
