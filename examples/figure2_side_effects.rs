//! Regenerate the paper's Figure 2 ("Side effects of a reallocation"):
//! one job finishes earlier thanks to a migration while another finishes
//! later because the migrated reservation blocks it after an early
//! completion.
//!
//! ```text
//! cargo run --release --example figure2_side_effects
//! ```

fn main() {
    print!("{}", caniou_realloc::realloc::figures::figure2());
}
