//! Replay one month of the paper's Grid'5000 scenario and compare all six
//! reallocation heuristics under both algorithms, like one column of the
//! paper's Tables 2-17.
//!
//! ```text
//! cargo run --release --example grid5000_month -- [month] [fraction]
//!   month    jan|feb|mar|apr|may|jun|pwa-g5k   (default jun)
//!   fraction 0 < f <= 1                        (default 0.1)
//! ```

use caniou_realloc::prelude::*;
use caniou_realloc::realloc::experiments::platform_for;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = args
        .first()
        .map(|s| {
            Scenario::ALL
                .into_iter()
                .find(|sc| sc.label() == s)
                .unwrap_or_else(|| panic!("unknown month {s:?}"))
        })
        .unwrap_or(Scenario::Jun);
    let fraction: f64 = args
        .get(1)
        .map_or(0.1, |s| s.parse().expect("bad fraction"));

    let jobs = scenario.generate_fraction(42, fraction);
    let platform = platform_for(scenario, true); // heterogeneous, like §4's "most realistic" setup
    let policy = BatchPolicy::Cbf;
    println!(
        "scenario {} at fraction {}: {} jobs on {} ({} cores), {policy} everywhere",
        scenario.label(),
        fraction,
        jobs.len(),
        platform.name,
        platform.total_procs()
    );

    let baseline = GridSim::new(GridConfig::new(platform.clone(), policy), jobs.clone())
        .run()
        .expect("schedulable");
    println!(
        "baseline (no reallocation): mean response {:.0} s, makespan {}",
        baseline.mean_response(),
        baseline.makespan
    );
    println!();
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9}",
        "heuristic", "impacted%", "earlier%", "reallocs", "rel.resp"
    );
    for algorithm in ReallocAlgorithm::ALL {
        for heuristic in Heuristic::ALL {
            let cfg = ReallocConfig::new(algorithm, heuristic);
            let run = GridSim::new(
                GridConfig::new(platform.clone(), policy).with_realloc(cfg),
                jobs.clone(),
            )
            .run()
            .expect("schedulable");
            let cmp = Comparison::against_baseline(&baseline, &run);
            println!(
                "{:<14} {:>9.2} {:>9.2} {:>9} {:>9.3}",
                cfg.row_label(),
                cmp.pct_impacted,
                cmp.pct_earlier,
                cmp.reallocations,
                cmp.rel_avg_response
            );
        }
    }
}
