//! The motivating case of the paper's introduction: a submission burst
//! overwhelms one cluster's batch queue while the rest of the grid has
//! room, and walltime over-estimation makes the queue estimates wrong.
//! Reallocation drains the backlog onto the other sites.
//!
//! ```text
//! cargo run --release --example heterogeneous_burst
//! ```

use caniou_realloc::prelude::*;
use caniou_realloc::workload::swf::merge_traces;
use caniou_realloc::workload::ArrivalSpec;

fn main() {
    // The heterogeneous Grid'5000 platform of the paper (§3.2).
    let platform = Platform::grid5000(true);

    // Site 0 (Bordeaux, 640 cores) produces a extremely bursty stream:
    // most of its 2000 jobs arrive inside a handful of short windows.
    let mut bordeaux = SiteWorkloadSpec::new(2_000, 640, Duration::days(3)).with_utilization(0.9);
    bordeaux.arrival = ArrivalSpec {
        n_bursts: 6,
        burst_len: (600, 1_800),
        burst_weight: 300.0,
        ..ArrivalSpec::default()
    };
    // The other sites are quiet.
    let lyon = SiteWorkloadSpec::new(200, 270, Duration::days(3)).with_utilization(0.3);
    let toulouse = SiteWorkloadSpec::new(200, 434, Duration::days(3)).with_utilization(0.3);

    let mut rng = SimRng::seed_from_u64(2024);
    let jobs = merge_traces(vec![
        bordeaux.generate(&mut rng),
        lyon.generate(&mut rng),
        toulouse.generate(&mut rng),
    ]);
    println!(
        "{} jobs over 3 days; bursts of hundreds of submissions",
        jobs.len()
    );

    for policy in [BatchPolicy::Fcfs, BatchPolicy::Cbf] {
        let baseline = GridSim::new(GridConfig::new(platform.clone(), policy), jobs.clone())
            .run()
            .expect("schedulable");
        println!();
        println!("== {policy} ==");
        println!(
            "  no reallocation:           mean wait {:>7.0} s, mean response {:>7.0} s",
            baseline.mean_wait(),
            baseline.mean_response()
        );
        for (label, algo, heuristic) in [
            (
                "Algorithm 1 (MCT)",
                ReallocAlgorithm::NoCancel,
                Heuristic::Mct,
            ),
            (
                "Algorithm 2 (MinMin-C)",
                ReallocAlgorithm::CancelAll,
                Heuristic::MinMin,
            ),
        ] {
            let run = GridSim::new(
                GridConfig::new(platform.clone(), policy)
                    .with_realloc(ReallocConfig::new(algo, heuristic)),
                jobs.clone(),
            )
            .run()
            .expect("schedulable");
            let cmp = Comparison::against_baseline(&baseline, &run);
            println!(
                "  {label:<26} mean wait {:>7.0} s, mean response {:>7.0} s  \
                 ({} reallocs, {:.1}% impacted, rel.resp {:.3})",
                run.mean_wait(),
                run.mean_response(),
                cmp.reallocations,
                cmp.pct_impacted,
                cmp.rel_avg_response
            );
        }
    }
}
