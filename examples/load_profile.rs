//! Visualize why the paper's months behave so differently: sparklines of
//! platform utilization and waiting-queue length over a month, with and
//! without reallocation.
//!
//! ```text
//! cargo run --release --example load_profile -- [month] [fraction]
//! ```

use caniou_realloc::metrics::timeseries::{queue_length_series, sparkline, utilization_series};
use caniou_realloc::prelude::*;
use caniou_realloc::realloc::experiments::platform_for;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = args
        .first()
        .map(|s| {
            Scenario::ALL
                .into_iter()
                .find(|sc| sc.label() == s)
                .unwrap_or_else(|| panic!("unknown month {s:?}"))
        })
        .unwrap_or(Scenario::Apr);
    let fraction: f64 = args
        .get(1)
        .map_or(0.05, |s| s.parse().expect("bad fraction"));

    let jobs = scenario.generate_fraction(42, fraction);
    let platform = platform_for(scenario, true);
    let total = platform.total_procs();
    let width = 72;

    println!(
        "{} at fraction {fraction}: {} jobs on {} cores (heterogeneous, FCFS)",
        scenario.label(),
        jobs.len(),
        total
    );
    for (label, realloc) in [
        ("no reallocation", None),
        (
            "cancel-all / MinMin",
            Some(ReallocConfig::new(
                ReallocAlgorithm::CancelAll,
                Heuristic::MinMin,
            )),
        ),
    ] {
        let mut config = GridConfig::new(platform.clone(), BatchPolicy::Fcfs);
        if let Some(r) = realloc {
            config = config.with_realloc(r);
        }
        let out = GridSim::new(config, jobs.clone())
            .run()
            .expect("schedulable");
        let util: Vec<f64> = utilization_series(&jobs, &out, total, width)
            .into_iter()
            .map(|(_, u)| u)
            .collect();
        let queue: Vec<f64> = queue_length_series(&out, width)
            .into_iter()
            .map(|(_, n)| n as f64)
            .collect();
        let peak_queue = queue.iter().copied().fold(0.0f64, f64::max);
        println!();
        println!(
            "== {label}: mean response {:.0} s, makespan {} ==",
            out.mean_response(),
            out.makespan
        );
        println!("utilization  |{}|", sparkline(&util));
        println!("queue length |{}|  (peak {peak_queue})", sparkline(&queue));
    }
}
