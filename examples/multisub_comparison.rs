//! Head-to-head: the paper's reallocation mechanism vs the related-work
//! multiple-submission scheme (Sonmez et al.) on identical workloads.
//!
//! Multiple submission posts a copy of each job to the k best clusters and
//! cancels the siblings when one starts; reallocation keeps one copy per
//! job and migrates it at hourly events. The paper argues reallocation
//! "will keep the local resources management system less loaded because
//! each job is only in one queue" (§5) — this example puts numbers on the
//! trade-off.
//!
//! ```text
//! cargo run --release --example multisub_comparison -- [fraction]
//! ```

use caniou_realloc::prelude::*;
use caniou_realloc::realloc::ablation::mechanism_comparison;
use caniou_realloc::realloc::experiments::SuiteConfig;

fn main() {
    let fraction: f64 = std::env::args()
        .nth(1)
        .map_or(0.05, |s| s.parse().expect("bad fraction"));
    let suite = SuiteConfig {
        fraction,
        ..SuiteConfig::default()
    };
    println!("April scenario at fraction {fraction}, heterogeneous platform, FCFS everywhere");
    println!(
        "{:<32} {:>16} {:>16}",
        "mechanism", "mean resp (s)", "control actions"
    );
    for p in mechanism_comparison(Scenario::Apr, true, BatchPolicy::Fcfs, &suite) {
        println!(
            "{:<32} {:>16.0} {:>16}",
            p.label, p.mean_response, p.control_actions
        );
    }
    println!();
    println!(
        "'Control actions' counts migrations (reallocation) or extra queue entries\n\
         (multiple submission) — the load each mechanism puts on the batch systems."
    );
}
