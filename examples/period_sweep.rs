//! Ablation A1 as a standalone example: how does the reallocation period
//! (the paper fixes one hour, §2.2.1) trade migration traffic against
//! response-time gains?
//!
//! ```text
//! cargo run --release --example period_sweep -- [fraction]
//! ```

use caniou_realloc::prelude::*;
use caniou_realloc::realloc::ablation::period_sweep;
use caniou_realloc::realloc::experiments::SuiteConfig;

fn main() {
    let fraction: f64 = std::env::args()
        .nth(1)
        .map_or(0.05, |s| s.parse().expect("bad fraction"));
    let suite = SuiteConfig {
        fraction,
        ..SuiteConfig::default()
    };
    let periods = [
        Duration::minutes(10),
        Duration::minutes(30),
        Duration::hours(1), // the paper's choice
        Duration::hours(2),
        Duration::hours(6),
        Duration::hours(24),
    ];
    println!(
        "April scenario at fraction {fraction}, heterogeneous platform, FCFS, Algorithm 1 / MCT"
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10}",
        "period", "impacted%", "earlier%", "reallocs", "rel.resp"
    );
    for p in period_sweep(
        Scenario::Apr,
        true,
        BatchPolicy::Fcfs,
        ReallocAlgorithm::NoCancel,
        Heuristic::Mct,
        &periods,
        &suite,
    ) {
        println!(
            "{:>10} {:>10.2} {:>10.2} {:>10} {:>10.3}",
            p.period.to_string(),
            p.comparison.pct_impacted,
            p.comparison.pct_earlier,
            p.comparison.reallocations,
            p.comparison.rel_avg_response
        );
    }
    println!();
    println!(
        "The paper argues one hour is 'rare enough not to constantly send requests … and often \
         enough to improve performances' — the sweep shows where both sides of that trade-off bend."
    );
}
