//! Quickstart: simulate one day of bursty traffic on a two-cluster grid,
//! with and without the paper's reallocation mechanism.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use caniou_realloc::prelude::*;

fn main() {
    // A small dedicated grid: a slow 64-core cluster and a 20%-faster
    // 32-core one, both running conservative back-filling.
    let platform = Platform::new(
        "quickstart",
        vec![
            ClusterSpec::new("alpha", 64, 1.0),
            ClusterSpec::new("beta", 32, 1.2),
        ],
    );

    // One day of synthetic load for each site, merged into one arrival
    // stream (ids re-assigned in submission order).
    let mut rng = SimRng::seed_from_u64(7);
    let site_a = SiteWorkloadSpec::new(400, 64, Duration::days(1))
        .with_utilization(0.85)
        .generate(&mut rng);
    let site_b = SiteWorkloadSpec::new(150, 32, Duration::days(1))
        .with_utilization(0.7)
        .generate(&mut rng);
    let jobs = caniou_realloc::workload::swf::merge_traces(vec![site_a, site_b]);
    let stats = WorkloadStats::compute(&jobs);
    println!(
        "workload: {} jobs, mean size {:.1} procs, mean runtime {:.0} s, {} killed at walltime",
        stats.n_jobs, stats.mean_procs, stats.mean_runtime, stats.killed
    );

    // Reference run: MCT mapping, no reallocation.
    let baseline = GridSim::new(
        GridConfig::new(platform.clone(), BatchPolicy::Cbf),
        jobs.clone(),
    )
    .run()
    .expect("schedulable");

    // Same workload with hourly reallocation (Algorithm 1, MCT ordering).
    let with_realloc = GridSim::new(
        GridConfig::new(platform, BatchPolicy::Cbf).with_realloc(ReallocConfig::new(
            ReallocAlgorithm::NoCancel,
            Heuristic::Mct,
        )),
        jobs,
    )
    .run()
    .expect("schedulable");

    let cmp = Comparison::against_baseline(&baseline, &with_realloc);
    println!();
    println!(
        "without reallocation: mean response {:>7.0} s",
        baseline.mean_response()
    );
    println!(
        "with    reallocation: mean response {:>7.0} s",
        with_realloc.mean_response()
    );
    println!();
    println!(
        "jobs impacted:            {:>6.2}% ({} of {})",
        cmp.pct_impacted, cmp.impacted, cmp.n_jobs
    );
    println!(
        "of those, finished earlier: {:>5.2}% ({} earlier / {} later)",
        cmp.pct_earlier, cmp.earlier, cmp.later
    );
    println!("reallocations performed:  {:>6}", cmp.reallocations);
    println!(
        "relative avg response:    {:>6.3}  ({}{}%)",
        cmp.rel_avg_response,
        if cmp.rel_avg_response <= 1.0 {
            "gain "
        } else {
            "loss "
        },
        ((1.0 - cmp.rel_avg_response).abs() * 100.0).round()
    );
}
