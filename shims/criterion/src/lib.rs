//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Provides the API surface the `crates/bench` targets use — groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! `criterion_group!` / `criterion_main!` — backed by a simple wall-clock
//! loop: warm up for `warm_up_time`, then run batches until
//! `measurement_time` elapses and report the mean iteration time and
//! throughput on stdout.
//!
//! No statistics, plots or saved baselines; swap the workspace `criterion`
//! dependency back to crates.io for those. Bench sources need no changes.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup every iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the printable id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; drives the timing loop.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Filled in by the timing loop: (total elapsed, iterations).
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget elapses.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            black_box(routine());
            iters += 1;
        }
        self.result = Some((start.elapsed(), iters.max(1)));
    }

    /// Time `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < self.measurement {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
        }
        self.result = Some((measured, iters.max(1)));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Accepted for compatibility; the shim's loop is time-bounded.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.warm_up, self.measurement, f);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.warm_up, self.measurement, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

fn run_one(name: &str, warm_up: Duration, measurement: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        warm_up,
        measurement,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            println!(
                "bench: {name:<60} {:>12.3} us/iter ({iters} iters, {:.1} iters/s)",
                per_iter * 1e6,
                1.0 / per_iter.max(f64::MIN_POSITIVE),
            );
        }
        None => println!("bench: {name:<60} (no timing loop ran)"),
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &id.into_id(),
            Duration::from_millis(300),
            Duration::from_millis(1000),
            f,
        );
        self
    }
}

/// Bundle benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_timing() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default();
        c.bench_function(BenchmarkId::new("batched", 1), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
