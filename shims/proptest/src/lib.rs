//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset of proptest used by this workspace's property
//! tests: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, range and tuple strategies, `prop::collection::vec`,
//! `prop::sample::select` and `Strategy::prop_map`.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case reports its generated inputs verbatim;
//! * cases are generated from a fixed per-test seed, so runs are fully
//!   deterministic (the real crate randomises unless configured);
//! * rejected cases (`prop_assume!`) are skipped, not re-drawn.
//!
//! Swap the workspace `proptest` dependency back to crates.io when a
//! registry is reachable; test sources need no changes.

use std::ops::{Range, RangeInclusive};

/// Runtime configuration accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic generator backing the strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary 64-bit value via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Per-(test, case) stream: FNV-1a over the test name mixed with the
    /// case index.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform `u64` in `[0, bound)` (bound > 0), rejection-free enough
    /// for test generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply trick: maps next_u64 onto [0, bound) with
        // negligible bias for test purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always-the-same-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, G);
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The whole-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::` namespace of the real crate.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Size specification for [`vec()`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        /// Strategy generating vectors of `element` with a length drawn
        /// from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo
                    + if span == 0 {
                        0
                    } else {
                        rng.below(span + 1) as usize
                    };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Uniformly select one of `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select on empty options");
            Select { options }
        }

        /// Strategy returned by [`select`].
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                // Echo inputs on failure: captured before the body can
                // move the bindings (which may be tuple patterns).
                let mut __inputs = String::new();
                $(
                    let __generated = $crate::Strategy::generate(&($strat), &mut __rng);
                    __inputs.push_str(&format!("{} = {:?}; ", stringify!($arg), &__generated));
                    let $arg = __generated;
                )*
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property '{}' failed at case {case}: {msg}\n  inputs: {__inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1u32..=4, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn prop_map_applies(v in (0u64..5).prop_map(|x| x * 10)) {
            prop_assert!(v % 10 == 0 && v < 50);
        }

        #[test]
        fn select_picks_member(c in prop::sample::select(vec!['a', 'b', 'c'])) {
            prop_assert!(['a', 'b', 'c'].contains(&c));
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn determinism_across_rng_instances() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::TestRng;

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
