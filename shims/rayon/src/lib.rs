//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build container has no registry access, so this crate provides the
//! handful of parallel-iterator operations the workspace actually uses
//! (`par_iter().map(..)`, `par_iter().flat_map_iter(..)`, `collect()`),
//! implemented with scoped threads pulling work items off a shared atomic
//! cursor — dynamic (work-stealing-like) scheduling at item granularity.
//!
//! Semantics match rayon where it matters here:
//!
//! * results are delivered in input order (like rayon's indexed collect);
//! * closures run concurrently, so they must be `Sync` and items `Send`;
//! * a panic in a worker propagates to the caller.
//!
//! Swap the workspace `rayon` dependency back to crates.io when a registry
//! is reachable; no call sites need to change.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParVec};
}

/// Number of worker threads used for parallel operations.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over `0..n`, returning results in index order. Items are
/// claimed one at a time from a shared cursor so uneven item costs load
/// balance across the pool, like rayon's work stealing.
pub fn indexed_run<U: Send>(n: usize, threads: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    let threads = threads.clamp(1, n.max(1));
    if n == 0 {
        return Vec::new();
    }
    if threads == 1 || n == 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut indexed: Vec<(usize, U)> = Vec::with_capacity(n);
    for part in &mut parts {
        indexed.append(part);
    }
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, v)| v).collect()
}

/// `.par_iter()` entry point, mirroring rayon's trait of the same name.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Sync + 'a;
    /// Build the parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map; result order matches input order.
    pub fn map<U: Send>(self, f: impl Fn(&'a T) -> U + Sync) -> ParVec<U> {
        let items = self.items;
        ParVec {
            items: indexed_run(items.len(), current_num_threads(), |i| f(&items[i])),
        }
    }

    /// Parallel flat-map where each closure call yields a serial iterator.
    pub fn flat_map_iter<U, I>(self, f: impl Fn(&'a T) -> I + Sync) -> ParVec<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
    {
        let items = self.items;
        let nested = indexed_run(items.len(), current_num_threads(), |i| {
            f(&items[i]).into_iter().collect::<Vec<U>>()
        });
        ParVec {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Parallel for-each.
    pub fn for_each(self, f: impl Fn(&'a T) + Sync) {
        let items = self.items;
        indexed_run(items.len(), current_num_threads(), |i| f(&items[i]));
    }
}

/// Materialised results of a parallel stage.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParVec<T> {
    /// Chain another map stage (sequential: the parallel work already
    /// happened when this `ParVec` was materialised).
    pub fn map<U: Send>(self, f: impl Fn(T) -> U + Sync) -> ParVec<U> {
        ParVec {
            items: self.items.into_iter().map(f).collect(),
        }
    }

    /// Gather into any `FromIterator` collection, in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..500).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let v = vec![1usize, 2, 3];
        let out: Vec<usize> = v.par_iter().flat_map_iter(|&n| 0..n).collect();
        assert_eq!(out, vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn collects_into_hashmap() {
        let v: Vec<u32> = (0..64).collect();
        let m: HashMap<u32, u32> = v.par_iter().map(|&x| (x, x * x)).collect();
        assert_eq!(m.len(), 64);
        assert_eq!(m[&7], 49);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let v: Vec<u32> = (0..32).collect();
        let _: Vec<u32> = v
            .par_iter()
            .map(|&x| if x == 17 { panic!("boom") } else { x })
            .collect();
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
