//! # caniou-realloc — tasks reallocation in a dedicated grid environment
//!
//! A complete, from-scratch Rust reproduction of
//!
//! > Yves Caniou, Ghislain Charrier, Frédéric Desprez.
//! > *Analysis of Tasks Reallocation in a Dedicated Grid Environment.*
//! > INRIA Research Report RR-7226, March 2010 (CLUSTER 2010).
//!
//! The paper proposes a middleware-level mechanism that periodically
//! migrates *waiting* batch jobs between the clusters of a multi-cluster
//! grid whenever their estimated completion time would improve, and
//! evaluates two algorithms (with and without mass cancellation) × six
//! scheduling heuristics over six months of Grid'5000 traces and two
//! Parallel Workload Archive logs.
//!
//! This facade crate re-exports the whole stack:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`des`] | deterministic discrete-event kernel (virtual clock, event queue, seeded RNG) |
//! | [`batch`] | Simbatch-equivalent cluster simulator: availability profiles, FCFS and conservative back-filling, the four middleware queries, ASCII Gantt charts |
//! | [`workload`] | SWF trace I/O and the calibrated synthetic generator reproducing the paper's Table 1 scenarios |
//! | [`realloc`] | the paper's contribution: MCT meta-scheduling, reallocation Algorithms 1 & 2, the six heuristics, the 364-experiment harness and ablations |
//! | [`metrics`] | the §3.4 evaluation metrics and paper-style table rendering |
//! | [`fault`] | deterministic fault injection: cluster outage windows, ECT estimation noise, trace perturbation |
//! | [`obs`] | deterministic, zero-cost-when-disabled instrumentation: recorder, Chrome-trace/JSONL exporters, campaign progress view |
//! | [`campaign`] | declarative experiment campaigns: spec files, sharded execution, content-addressed result cache, aggregation and exports |
//!
//! ## Quick start
//!
//! ```
//! use caniou_realloc::prelude::*;
//!
//! // 1% of the paper's June 2008 scenario on the heterogeneous Grid'5000
//! // platform, CBF everywhere, hourly reallocation with cancellation.
//! let jobs = Scenario::Jun.generate_fraction(42, 0.01);
//! let baseline = GridSim::new(
//!     GridConfig::new(Platform::grid5000(true), BatchPolicy::Cbf),
//!     jobs.clone(),
//! )
//! .run()
//! .unwrap();
//! let with_realloc = GridSim::new(
//!     GridConfig::new(Platform::grid5000(true), BatchPolicy::Cbf)
//!         .with_realloc(ReallocConfig::new(ReallocAlgorithm::CancelAll, Heuristic::MinMin)),
//!     jobs,
//! )
//! .run()
//! .unwrap();
//! let cmp = Comparison::against_baseline(&baseline, &with_realloc);
//! println!(
//!     "{:.1}% of jobs impacted, {:.1}% of those earlier, relative response {:.2}",
//!     cmp.pct_impacted, cmp.pct_earlier, cmp.rel_avg_response
//! );
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries regenerating every table and figure of the paper.

pub use grid_batch as batch;
pub use grid_campaign as campaign;
pub use grid_des as des;
pub use grid_fault as fault;
pub use grid_metrics as metrics;
pub use grid_obs as obs;
pub use grid_realloc as realloc;
pub use grid_workload as workload;

/// The names most programs need.
pub mod prelude {
    pub use grid_batch::{
        BatchPolicy, Cluster, ClusterSpec, GanttChart, JobId, JobSpec, LocalScheduler, Platform,
    };
    pub use grid_campaign::{CampaignPlan, CampaignSpec, ResultCache};
    pub use grid_des::{Duration, SimRng, SimTime};
    pub use grid_fault::{EctNoiseSpec, Fault, OutageSpec, PerturbSpec};
    pub use grid_metrics::{Comparison, JobRecord, PaperTable, RunOutcome};
    pub use grid_obs::{Obs, Recorder};
    pub use grid_realloc::{
        GridConfig, GridSim, Heuristic, Mapping, MappingPolicy, OrderingHeuristic,
        ReallocAlgorithm, ReallocConfig, ReallocStrategy,
    };
    pub use grid_workload::{Scenario, SiteWorkloadSpec, WorkloadStats};
}
