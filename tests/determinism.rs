//! End-to-end determinism pins: the whole stack (generator → meta-scheduler
//! → batch simulation → metrics) is a pure function of its inputs, across
//! every policy combination. These tests fingerprint full runs so that any
//! accidental nondeterminism (iteration-order leaks, uninitialised state,
//! floating-point divergence) is caught immediately.

use caniou_realloc::prelude::*;
use caniou_realloc::realloc::experiments::platform_for;

/// FNV-1a over the scheduling-relevant fields of a run outcome.
fn fingerprint(outcome: &RunOutcome) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for r in outcome.records.values() {
        mix(r.id.0);
        mix(r.submit.as_secs());
        mix(r.start.as_secs());
        mix(r.completion.as_secs());
        mix(r.cluster as u64);
        mix(u64::from(r.reallocations));
    }
    mix(outcome.total_reallocations);
    mix(outcome.total_ticks);
    h
}

fn run_once(
    scenario: Scenario,
    het: bool,
    policy: BatchPolicy,
    realloc: Option<ReallocConfig>,
) -> RunOutcome {
    let jobs = scenario.generate_fraction(42, 0.005);
    let mut config = GridConfig::new(platform_for(scenario, het), policy);
    if let Some(r) = realloc {
        config = config.with_realloc(r);
    }
    GridSim::new(config, jobs).run().expect("schedulable")
}

#[test]
fn full_stack_runs_are_bit_reproducible() {
    for policy in [BatchPolicy::Fcfs, BatchPolicy::Cbf, BatchPolicy::Easy] {
        for realloc in [
            None,
            Some(ReallocConfig::new(
                ReallocAlgorithm::NoCancel,
                Heuristic::Sufferage,
            )),
            Some(ReallocConfig::new(
                ReallocAlgorithm::CancelAll,
                Heuristic::MaxRelGain,
            )),
        ] {
            let a = fingerprint(&run_once(Scenario::Mar, true, policy, realloc));
            let b = fingerprint(&run_once(Scenario::Mar, true, policy, realloc));
            assert_eq!(a, b, "{policy} {realloc:?} diverged between runs");
        }
    }
}

#[test]
fn distinct_configs_produce_distinct_outcomes() {
    // Sanity that the fingerprint actually discriminates: different
    // policies/heuristics/platforms land on different schedules for a
    // loaded scenario.
    let base = fingerprint(&run_once(Scenario::Apr, false, BatchPolicy::Fcfs, None));
    let cbf = fingerprint(&run_once(Scenario::Apr, false, BatchPolicy::Cbf, None));
    let het = fingerprint(&run_once(Scenario::Apr, true, BatchPolicy::Fcfs, None));
    let realloc = fingerprint(&run_once(
        Scenario::Apr,
        false,
        BatchPolicy::Fcfs,
        Some(ReallocConfig::new(
            ReallocAlgorithm::CancelAll,
            Heuristic::MinMin,
        )),
    ));
    assert_ne!(base, cbf, "FCFS vs CBF must differ");
    assert_ne!(base, het, "homogeneous vs heterogeneous must differ");
    assert_ne!(base, realloc, "reallocation must change the schedule");
}

#[test]
fn multisub_runs_are_reproducible_too() {
    use caniou_realloc::realloc::multisub::{simulate_multisub, MultiSubConfig};
    let jobs = Scenario::Feb.generate_fraction(42, 0.005);
    let run = |jobs: Vec<JobSpec>| {
        simulate_multisub(
            MultiSubConfig::new(Platform::grid5000(true), BatchPolicy::Cbf, 2),
            jobs,
        )
    };
    let a = fingerprint(&run(jobs.clone()));
    let b = fingerprint(&run(jobs));
    assert_eq!(a, b);
}
