//! Cross-crate integration tests: full simulations through the public
//! facade, checking paper-level properties end to end.

use caniou_realloc::prelude::*;
use caniou_realloc::realloc::experiments::platform_for;

/// Run a scenario fraction with and without reallocation and return
/// `(baseline, run, comparison)`.
fn run_pair(
    scenario: Scenario,
    het: bool,
    policy: BatchPolicy,
    algo: ReallocAlgorithm,
    h: Heuristic,
    frac: f64,
) -> (RunOutcome, RunOutcome, Comparison) {
    let jobs = scenario.generate_fraction(11, frac);
    let platform = platform_for(scenario, het);
    let base = GridSim::new(GridConfig::new(platform.clone(), policy), jobs.clone())
        .run()
        .expect("schedulable");
    let run = GridSim::new(
        GridConfig::new(platform, policy).with_realloc(ReallocConfig::new(algo, h)),
        jobs,
    )
    .run()
    .expect("schedulable");
    let cmp = Comparison::against_baseline(&base, &run);
    (base, run, cmp)
}

#[test]
fn every_job_completes_with_and_without_reallocation() {
    let (base, run, cmp) = run_pair(
        Scenario::Mar,
        true,
        BatchPolicy::Cbf,
        ReallocAlgorithm::NoCancel,
        Heuristic::MinMin,
        0.01,
    );
    assert_eq!(base.records.len(), run.records.len());
    assert_eq!(cmp.n_jobs, base.records.len());
    assert!(cmp.n_jobs > 100);
}

#[test]
fn response_times_are_consistent() {
    let (_, run, _) = run_pair(
        Scenario::Feb,
        false,
        BatchPolicy::Fcfs,
        ReallocAlgorithm::CancelAll,
        Heuristic::MaxGain,
        0.01,
    );
    for r in run.records.values() {
        assert!(
            r.start >= r.submit,
            "job {} started before submission",
            r.id
        );
        assert!(
            r.completion >= r.start,
            "job {} completed before starting",
            r.id
        );
    }
}

#[test]
fn reallocation_counts_match_per_job_records() {
    let (_, run, _) = run_pair(
        Scenario::Apr,
        true,
        BatchPolicy::Fcfs,
        ReallocAlgorithm::CancelAll,
        Heuristic::MinMin,
        0.01,
    );
    let per_job: u64 = run
        .records
        .values()
        .map(|r| u64::from(r.reallocations))
        .sum();
    assert_eq!(per_job, run.total_reallocations);
    assert!(run.total_ticks >= run.active_ticks);
}

#[test]
fn no_realloc_run_is_invariant_of_realloc_config_absence() {
    // Two baseline runs of the same scenario are bit-identical.
    let jobs = Scenario::May.generate_fraction(3, 0.01);
    let mk = || {
        GridSim::new(
            GridConfig::new(Platform::grid5000(false), BatchPolicy::Fcfs),
            jobs.clone(),
        )
        .run()
        .unwrap()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.records, b.records);
    assert_eq!(a.total_reallocations, 0);
    assert_eq!(a.total_ticks, 0);
}

#[test]
fn heterogeneous_platform_prefers_faster_clusters_for_equal_queues() {
    // A stream of identical jobs at t=0: with empty clusters, MCT sends
    // each to the cluster with the best ECT, which scales with speed.
    let jobs: Vec<JobSpec> = (0..30)
        .map(|i| JobSpec::new(i, 0, 64, 3_600, 7_200))
        .collect();
    let out = GridSim::new(
        GridConfig::new(Platform::grid5000(true), BatchPolicy::Cbf),
        jobs,
    )
    .run()
    .unwrap();
    // Toulouse (speed 1.4) must receive at least as many of the first jobs
    // as Bordeaux (speed 1.0) — its ECTs are 40% shorter.
    let per_cluster = |c: usize| out.records.values().filter(|r| r.cluster == c).count();
    assert!(
        per_cluster(2) >= per_cluster(0),
        "toulouse {} vs bordeaux {}",
        per_cluster(2),
        per_cluster(0)
    );
}

#[test]
fn cancel_all_reallocates_more_than_no_cancel_in_aggregate() {
    // §4.3's claim is an aggregate one; individual (scenario, heuristic)
    // cells can go either way, so sum over the heuristics.
    let total = |algo: ReallocAlgorithm| -> u64 {
        Heuristic::ALL
            .iter()
            .map(|&h| {
                run_pair(Scenario::Apr, false, BatchPolicy::Fcfs, algo, h, 0.02)
                    .1
                    .total_reallocations
            })
            .sum()
    };
    let no_cancel = total(ReallocAlgorithm::NoCancel);
    let cancel_all = total(ReallocAlgorithm::CancelAll);
    assert!(
        cancel_all > no_cancel,
        "cancel-all {cancel_all} vs no-cancel {no_cancel}"
    );
}

#[test]
fn impacted_never_exceeds_total_and_percentages_are_sane() {
    for algo in ReallocAlgorithm::ALL {
        let (_, _, cmp) = run_pair(
            Scenario::Jun,
            true,
            BatchPolicy::Fcfs,
            algo,
            Heuristic::Sufferage,
            0.01,
        );
        assert!(cmp.impacted <= cmp.n_jobs);
        assert_eq!(cmp.earlier + cmp.later, cmp.impacted);
        assert!((0.0..=100.0).contains(&cmp.pct_impacted));
        assert!((0.0..=100.0).contains(&cmp.pct_earlier));
        assert!(cmp.rel_avg_response > 0.0);
    }
}

#[test]
fn swf_written_traces_replay_identically() {
    use caniou_realloc::workload::swf;
    let jobs = Scenario::Jun.generate_fraction(9, 0.005);
    let text = swf::write(&jobs, &[]);
    let parsed = swf::parse(&text).unwrap().jobs;
    assert_eq!(jobs.len(), parsed.len());
    let run = |js: Vec<JobSpec>| {
        GridSim::new(
            GridConfig::new(Platform::grid5000(true), BatchPolicy::Cbf),
            js,
        )
        .run()
        .unwrap()
    };
    let a = run(jobs);
    let b = run(parsed);
    assert_eq!(
        a.records, b.records,
        "SWF round-trip must not change the simulation"
    );
}

#[test]
fn walltime_overestimation_is_what_reallocation_exploits() {
    // With perfectly honest walltimes (runtime == walltime) and both
    // clusters estimated exactly, Algorithm 1 finds far fewer profitable
    // moves than with the paper's over-estimated walltimes.
    let honest: Vec<JobSpec> = Scenario::Jun
        .generate_fraction(5, 0.01)
        .into_iter()
        .map(|mut j| {
            j.walltime_ref = Duration(j.runtime_ref.as_secs().max(1));
            j
        })
        .collect();
    let sloppy = Scenario::Jun.generate_fraction(5, 0.01);
    let count = |jobs: Vec<JobSpec>| {
        GridSim::new(
            GridConfig::new(Platform::grid5000(false), BatchPolicy::Fcfs).with_realloc(
                ReallocConfig::new(ReallocAlgorithm::NoCancel, Heuristic::Mct),
            ),
            jobs,
        )
        .run()
        .unwrap()
        .total_reallocations
    };
    let honest_moves = count(honest);
    let sloppy_moves = count(sloppy);
    assert!(
        sloppy_moves >= honest_moves,
        "over-estimation should create migration opportunities: {sloppy_moves} vs {honest_moves}"
    );
}

#[test]
fn gantt_chart_can_be_built_from_any_run() {
    let jobs = Scenario::Jun.generate_fraction(2, 0.005);
    let out = GridSim::new(
        GridConfig::new(Platform::grid5000(false), BatchPolicy::Cbf),
        jobs.clone(),
    )
    .run()
    .unwrap();
    let mut chart = GanttChart::new();
    let by_id: std::collections::HashMap<JobId, &JobSpec> =
        jobs.iter().map(|j| (j.id, j)).collect();
    for r in out.records.values().filter(|r| r.cluster == 0).take(40) {
        chart.push(caniou_realloc::batch::GanttEntry {
            job: r.id,
            procs: by_id[&r.id].procs,
            start: r.start,
            end: r.completion,
        });
    }
    let rendered = chart.render(640, SimTime::ZERO, out.makespan.max(SimTime(1)), 100);
    assert!(rendered.lines().count() > 600, "one text row per processor");
}
