//! Golden-equivalence pin for the policy-engine refactor.
//!
//! The trait-based scheduler/mapping/reallocation registries replaced the
//! closed enums that used to drive the paper's 364-run campaign, and the
//! warm-profile incremental schedule maintenance replaced the
//! invalidate-on-every-change cache. Both must be *behaviour-preserving*:
//! the `tests/golden/` artifacts were produced by the pre-refactor engine
//! (commit 8373418) running the full 364-run paper matrix, and the
//! current engine must reproduce them byte for byte.
//!
//! The checked-in artifacts cover the whole matrix at fraction 0.002
//! (fast enough for `cargo test`); the `#[ignore]`d test additionally
//! pins the 1% example-spec campaign by hash — run it with
//! `cargo test --release -- --ignored golden` when touching scheduling
//! internals.

use caniou_realloc::campaign::{aggregate, execute, CampaignSpec, ExecOptions};

/// The paper's 364-run matrix at the given job-count fraction.
fn spec_at(fraction: f64) -> CampaignSpec {
    let mut spec = CampaignSpec::paper();
    spec.fraction = fraction;
    spec
}

/// Execute a spec in-process and render (tables, csv).
fn run_reports(spec: &CampaignSpec) -> (String, String) {
    let plan = spec.expand();
    assert_eq!(plan.len(), 364, "the paper suite is 364 runs");
    let (outcomes, summary) = execute(&plan.units, None, &ExecOptions::default());
    assert!(summary.failures.is_empty(), "{:?}", summary.failures);
    let results = aggregate(spec, &plan, &outcomes).expect("complete campaign");
    (results.render_tables(), results.to_csv())
}

#[test]
fn paper_suite_is_byte_identical_to_pre_refactor_engine() {
    let (tables, csv) = run_reports(&spec_at(0.002));
    assert_eq!(
        tables,
        include_str!("golden/paper_suite_0002_tables.txt"),
        "table report diverged from the pre-refactor engine"
    );
    assert_eq!(
        csv,
        include_str!("golden/paper_suite_0002.csv"),
        "CSV report diverged from the pre-refactor engine"
    );
}

/// Hex SHA-256, dependency-free (small and slow is fine for one test).
fn sha256_hex(bytes: &[u8]) -> String {
    // FIPS 180-4 constants.
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut msg = bytes.to_vec();
    let bit_len = (bytes.len() as u64) * 8;
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    for chunk in msg.chunks(64) {
        let mut w = [0u32; 64];
        for (i, word) in chunk.chunks(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    h.iter().map(|v| format!("{v:08x}")).collect()
}

/// The 1% example-spec campaign, pinned by hash (slow — release only).
#[test]
#[ignore = "minutes-long; run with --release -- --ignored when touching scheduling internals"]
fn paper_suite_at_one_percent_matches_pre_refactor_hashes() {
    let pinned = include_str!("golden/paper_suite_001.sha256");
    let hash_of = |suffix: &str| {
        pinned
            .lines()
            .find(|l| l.ends_with(suffix))
            .and_then(|l| l.split_whitespace().next())
            .unwrap_or_else(|| panic!("no pinned hash for {suffix}"))
            .to_string()
    };
    let (tables, csv) = run_reports(&spec_at(0.01));
    assert_eq!(sha256_hex(tables.as_bytes()), hash_of("tables_001.txt"));
    assert_eq!(sha256_hex(csv.as_bytes()), hash_of("csv_001.csv"));
}

#[test]
fn sha256_self_check() {
    // NIST test vector for "abc".
    assert_eq!(
        sha256_hex(b"abc"),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
}
